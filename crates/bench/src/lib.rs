//! Shared fixtures for the criterion benchmarks: deterministic traces at a
//! few canonical scales, so every bench measures the same workloads the
//! paper's runtime figures use.
#![warn(missing_docs)]

use flock_netsim::dist::Pareto;
use flock_netsim::failure::{self, FailureScenario, DEFAULT_NOISE_MAX};
use flock_netsim::flowsim::{run_probes, simulate_flows, FlowSimConfig};
use flock_netsim::traffic::{generate_demands, FlowDemand, TrafficConfig, TrafficPattern};
use flock_stream::{SetTouch, SetTouchIndex, Shard, ShardPlan};
use flock_telemetry::input::{assemble, AnalysisMode, CoalesceMode, InputKind, ObservationSet};
use flock_telemetry::{plan_a1_probes, Assembler, MonitoredFlow};
use flock_topology::{ClosParams, GroundTruth, NodeRole, Router, Topology};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A deterministic benchmark trace.
pub struct BenchTrace {
    /// Topology.
    pub topo: Topology,
    /// Monitored flows (passive + probes).
    pub flows: Vec<MonitoredFlow>,
    /// Ground truth.
    pub truth: GroundTruth,
}

/// Canonical scales: (name, servers, flows).
pub const SCALES: &[(&str, u32, usize)] = &[("small", 256, 4_000), ("medium", 1024, 20_000)];

/// Build a silent-drop trace at the given scale.
pub fn trace(servers: u32, flows_n: usize, seed: u64) -> BenchTrace {
    let topo = flock_topology::clos::three_tier(ClosParams::with_servers(servers));
    let router = Router::new(&topo);
    let mut rng = StdRng::seed_from_u64(seed);
    let scenario = failure::silent_link_drops(&topo, 3, (0.001, 0.01), DEFAULT_NOISE_MAX, &mut rng);
    let demands = generate_demands(
        &topo,
        &TrafficConfig::paper(flows_n, TrafficPattern::Uniform),
        &mut rng,
    );
    let cfg = FlowSimConfig::default();
    let mut flows = simulate_flows(&topo, &router, &scenario, &demands, &cfg, &mut rng);
    let probes = plan_a1_probes(&topo, &router, 50, Some(4096));
    flows.extend(run_probes(&scenario, &probes, &cfg, &mut rng));
    BenchTrace {
        truth: scenario.truth,
        topo,
        flows,
    }
}

/// Assemble an input for a trace.
pub fn input(t: &BenchTrace, kinds: &[InputKind]) -> ObservationSet {
    let router = Router::new(&t.topo);
    assemble(&t.topo, &router, &t.flows, kinds, AnalysisMode::PerPacket)
}

/// A steady-state fixture for the online pipeline: the same persistent
/// fault observed over several epochs of freshly drawn traffic.
pub struct SteadyEpochs {
    /// Topology.
    pub topo: Topology,
    /// Per-epoch monitored flows (same fault active throughout).
    pub epochs: Vec<Vec<MonitoredFlow>>,
    /// Ground truth (constant across epochs).
    pub truth: GroundTruth,
}

/// Observation set for epoch 1 of a fixture, assembled against an arena
/// already warmed by epoch 0 — the steady-state input the engine-layer
/// benches and `bench-report` measure on.
pub fn arena_warmed_obs(fixture: &SteadyEpochs, kinds: &[InputKind]) -> ObservationSet {
    arena_warmed_obs_mode(fixture, kinds, CoalesceMode::Exact)
}

/// [`arena_warmed_obs`] with the assembler sorting for an explicit
/// [`CoalesceMode`] — the approx-coalescing benches assemble the same
/// epoch twice (exact and approx order) so each engine coalesces at its
/// full reach.
pub fn arena_warmed_obs_mode(
    fixture: &SteadyEpochs,
    kinds: &[InputKind],
    mode: CoalesceMode,
) -> ObservationSet {
    let router = Router::new(&fixture.topo);
    let mut asm = Assembler::new();
    asm.set_coalesce(mode);
    let obs0 = asm.assemble(
        &fixture.topo,
        &router,
        &fixture.epochs[0],
        kinds,
        AnalysisMode::PerPacket,
    );
    asm.recycle(obs0);
    asm.assemble(
        &fixture.topo,
        &router,
        &fixture.epochs[1],
        kinds,
        AnalysisMode::PerPacket,
    )
}

/// The single-spine-shard plan's spine shard plus a touch index covering
/// `obs` — the parts of the spine shard's relevance filter, shared by
/// the `evidence_coalesce` bench and `bench-report` so the criterion
/// numbers and the JSON perf trajectory measure the same protocol. This
/// is the pre-plane-sharding baseline the per-plane numbers compare
/// against.
pub fn spine_shard(topo: &Topology, obs: &ObservationSet) -> (Shard, SetTouchIndex) {
    let plan = ShardPlan::by_pod_single_spine(topo);
    let shard = plan
        .shards
        .iter()
        .find(|s| s.label == "spine")
        .expect("pod plan has a spine shard")
        .clone();
    let mut touch = SetTouchIndex::new();
    touch.extend(topo, obs);
    (shard, touch)
}

/// The spine-plane shards of the pod plan plus a touch index covering
/// `obs` — one entry per spine plane, in plane order. The per-plane
/// engines built from these filters are what replace the single spine
/// engine of [`spine_shard`].
pub fn plane_shards(topo: &Topology, obs: &ObservationSet) -> (Vec<Shard>, SetTouchIndex) {
    let plan = ShardPlan::by_pod(topo);
    let shards: Vec<Shard> = plan
        .shards
        .iter()
        .filter(|s| matches!(s.kind, flock_stream::ShardKind::SpinePlane(_)))
        .cloned()
        .collect();
    assert!(!shards.is_empty(), "topology has no spine planes");
    let mut touch = SetTouchIndex::new();
    touch.extend(topo, obs);
    (shards, touch)
}

/// Combined (set ∪ prefix) touch signature per observation, in
/// `obs.flows` order — the pipeline derives these once per epoch and
/// answers every shard's relevance filter from them in O(1); the
/// benches mirror that protocol so engine-layer numbers measure engine
/// work, not per-engine signature derivation.
pub fn combined_touches(
    topo: &Topology,
    obs: &ObservationSet,
    touch: &SetTouchIndex,
) -> Vec<SetTouch> {
    obs.flows
        .iter()
        .map(|o| {
            let (set_touch, prefix_touch) = touch.flow_touch(topo, o);
            set_touch.union(prefix_touch)
        })
        .collect()
}

/// Quantized flow sizes (packets) for the spine-heavy fixture: RPC-style
/// traffic with a handful of standard message sizes, which makes the
/// `(path set, sent, bad)` evidence key highly repetitive — the workload
/// the evidence-coalescing layer is built for.
pub const RPC_PACKET_PALETTE: &[u64] = &[40, 80, 160, 320];

/// Build `n_epochs` epochs of *inter-pod only* traffic with quantized
/// flow sizes under one persistent agg–spine gray failure. Every flow
/// crosses the spine, so the spine shard of a pod-sharded pipeline sees
/// the whole epoch — the workload where raw per-flow evidence bounds the
/// sharded speedup and coalescing pays off (`evidence_coalesce` bench).
pub fn spine_heavy_epochs(
    servers: u32,
    flows_per_epoch: usize,
    n_epochs: usize,
    seed: u64,
) -> SteadyEpochs {
    let topo = flock_topology::clos::three_tier(ClosParams::with_servers(servers));
    let router = Router::new(&topo);
    let mut rng = StdRng::seed_from_u64(seed);
    // One gray agg–spine link: evidence against it is inherently global.
    let spine_link = topo
        .fabric_links()
        .into_iter()
        .find(|&l| {
            let lk = topo.link(l);
            topo.node(lk.src).role == NodeRole::Spine || topo.node(lk.dst).role == NodeRole::Spine
        })
        .expect("a three-tier Clos has spine-incident links");
    let mut scenario = FailureScenario::noise_only(&topo, DEFAULT_NOISE_MAX, &mut rng);
    scenario.drop_rate[spine_link.idx()] = 0.015;
    scenario.truth.failed_links.push(spine_link);

    let hosts = topo.hosts().to_vec();
    let pod_of = |h| topo.node(topo.host_leaf(h)).pod;
    let cfg = FlowSimConfig::default();
    let epochs = (0..n_epochs)
        .map(|_| {
            let demands: Vec<FlowDemand> = (0..flows_per_epoch)
                .map(|_| {
                    let src = hosts[rng.random_range(0..hosts.len())];
                    let mut dst = hosts[rng.random_range(0..hosts.len())];
                    while pod_of(dst) == pod_of(src) {
                        dst = hosts[rng.random_range(0..hosts.len())];
                    }
                    let packets = RPC_PACKET_PALETTE[rng.random_range(0..RPC_PACKET_PALETTE.len())];
                    FlowDemand { src, dst, packets }
                })
                .collect();
            simulate_flows(&topo, &router, &scenario, &demands, &cfg, &mut rng)
        })
        .collect();
    SteadyEpochs {
        truth: scenario.truth,
        topo,
        epochs,
    }
}

/// Build `n_epochs` epochs of fan-in traffic with heavy-tailed Pareto
/// flow sizes (shape 1.05 per the paper's traffic model, mean 20 MB so
/// the elephant tail spans 600–1M packets at a 1500-byte MSS) under one
/// persistent agg–spine gray failure: 90% of flows target the hosts of
/// a single “storage” rack from sources outside its pod, the rest is
/// uniform inter-pod background. Same fault structure as
/// [`spine_heavy_epochs`], but almost no two flows share an exact
/// `(sent, bad)` pair — the workload where exact coalescing leaves most
/// of the reduction on the table and approximate (bucketed) coalescing
/// is measured (`bench-report`'s `approx` section).
pub fn pareto_heavy_epochs(
    servers: u32,
    flows_per_epoch: usize,
    n_epochs: usize,
    seed: u64,
) -> SteadyEpochs {
    let topo = flock_topology::clos::three_tier(ClosParams::with_servers(servers));
    let router = Router::new(&topo);
    let mut rng = StdRng::seed_from_u64(seed);
    let spine_link = topo
        .fabric_links()
        .into_iter()
        .find(|&l| {
            let lk = topo.link(l);
            topo.node(lk.src).role == NodeRole::Spine || topo.node(lk.dst).role == NodeRole::Spine
        })
        .expect("a three-tier Clos has spine-incident links");
    let mut scenario = FailureScenario::noise_only(&topo, DEFAULT_NOISE_MAX, &mut rng);
    scenario.drop_rate[spine_link.idx()] = 0.015;
    scenario.truth.failed_links.push(spine_link);

    let hosts = topo.hosts().to_vec();
    let pod_of = |h| topo.node(topo.host_leaf(h)).pod;
    let storage_leaf = topo.host_leaf(hosts[0]);
    let storage_pod = topo.node(storage_leaf).pod;
    let storage_hosts: Vec<_> = hosts
        .iter()
        .copied()
        .filter(|&h| topo.host_leaf(h) == storage_leaf)
        .collect();
    let size_dist = Pareto::with_mean(20_000_000.0, 1.05);
    let mss = 1500.0;
    let cfg = FlowSimConfig::default();
    let epochs = (0..n_epochs)
        .map(|_| {
            let demands: Vec<FlowDemand> = (0..flows_per_epoch)
                .map(|_| {
                    let (src, dst) = if rng.random_range(0..10u32) < 9 {
                        let mut src = hosts[rng.random_range(0..hosts.len())];
                        while pod_of(src) == storage_pod {
                            src = hosts[rng.random_range(0..hosts.len())];
                        }
                        (src, storage_hosts[rng.random_range(0..storage_hosts.len())])
                    } else {
                        let src = hosts[rng.random_range(0..hosts.len())];
                        let mut dst = hosts[rng.random_range(0..hosts.len())];
                        while pod_of(dst) == pod_of(src) {
                            dst = hosts[rng.random_range(0..hosts.len())];
                        }
                        (src, dst)
                    };
                    let bytes = size_dist.sample(&mut rng);
                    let packets = (bytes / mss).ceil().clamp(1.0, 1_000_000.0) as u64;
                    FlowDemand { src, dst, packets }
                })
                .collect();
            simulate_flows(&topo, &router, &scenario, &demands, &cfg, &mut rng)
        })
        .collect();
    SteadyEpochs {
        truth: scenario.truth,
        topo,
        epochs,
    }
}

/// Build `n_epochs` epochs of inter-pod traffic under one *steady fault
/// in each of two spine planes* — the workload where the cross-plane
/// refinement pass runs every epoch, so its evidence scope (blaming
/// planes vs full spine) dominates the refining epochs' cost
/// (`bench-report`'s `fixed_cost.refine_*` numbers).
pub fn two_plane_fault_epochs(
    servers: u32,
    flows_per_epoch: usize,
    n_epochs: usize,
    seed: u64,
) -> SteadyEpochs {
    let topo = flock_topology::clos::three_tier(ClosParams::with_servers(servers));
    let planes = flock_topology::SpinePlanes::derive(&topo);
    assert!(
        planes.n_planes() >= 2,
        "two-plane fixture needs a striped spine"
    );
    let router = Router::new(&topo);
    let mut rng = StdRng::seed_from_u64(seed);
    // One gray link in each of the first two planes.
    let scenario = failure::multi_plane_link_drops(
        &topo,
        &planes,
        &[0, 1],
        1,
        (0.015, 0.02),
        DEFAULT_NOISE_MAX,
        &mut rng,
    );

    let hosts = topo.hosts().to_vec();
    let pod_of = |h| topo.node(topo.host_leaf(h)).pod;
    let cfg = FlowSimConfig::default();
    let epochs = (0..n_epochs)
        .map(|_| {
            let demands: Vec<FlowDemand> = (0..flows_per_epoch)
                .map(|_| {
                    let src = hosts[rng.random_range(0..hosts.len())];
                    let mut dst = hosts[rng.random_range(0..hosts.len())];
                    while pod_of(dst) == pod_of(src) {
                        dst = hosts[rng.random_range(0..hosts.len())];
                    }
                    let packets = RPC_PACKET_PALETTE[rng.random_range(0..RPC_PACKET_PALETTE.len())];
                    FlowDemand { src, dst, packets }
                })
                .collect();
            simulate_flows(&topo, &router, &scenario, &demands, &cfg, &mut rng)
        })
        .collect();
    SteadyEpochs {
        truth: scenario.truth,
        topo,
        epochs,
    }
}

/// Build `n_epochs` epochs of traffic under one unchanged silent-drop
/// fault — the steady state where warm-start inference should shine.
pub fn steady_epochs(
    servers: u32,
    flows_per_epoch: usize,
    n_epochs: usize,
    seed: u64,
) -> SteadyEpochs {
    let topo = flock_topology::clos::three_tier(ClosParams::with_servers(servers));
    let router = Router::new(&topo);
    let mut rng = StdRng::seed_from_u64(seed);
    let scenario = failure::silent_link_drops(&topo, 1, (0.01, 0.02), DEFAULT_NOISE_MAX, &mut rng);
    let cfg = FlowSimConfig::default();
    let epochs = (0..n_epochs)
        .map(|_| {
            let demands = generate_demands(
                &topo,
                &TrafficConfig::paper(flows_per_epoch, TrafficPattern::Uniform),
                &mut rng,
            );
            simulate_flows(&topo, &router, &scenario, &demands, &cfg, &mut rng)
        })
        .collect();
    SteadyEpochs {
        truth: scenario.truth,
        topo,
        epochs,
    }
}
