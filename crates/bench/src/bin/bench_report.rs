//! `bench-report` — machine-readable perf datapoints for the online
//! pipeline, written as JSON so every PR leaves a comparable perf
//! trajectory entry (CI runs this at `--scale smoke` and uploads
//! `BENCH_stream.json` as an artifact).
//!
//! Reported numbers (medians over `--samples` runs):
//! * steady-state pipeline epoch cost, warm vs cold;
//! * engine layer alone: warm rebind vs cold build;
//! * flip throughput (JLE flips/s on a built engine);
//! * evidence coalescing on the spine-heavy fixture: sharded epoch time
//!   coalesced vs raw, the spine-shard engine alone, and the spine
//!   shard's coalesce ratio (raw observations per super-flow);
//! * spine-plane sharding on the same fixture with traced evidence:
//!   the spine-tier epoch cost as one engine vs one per plane (in
//!   parallel), plus the plane count and per-plane evidence counts;
//! * **fixed costs** (schema v3): per-engine rebind time at *zero arena
//!   growth* (the pure per-epoch reset cost the arena-view layer made
//!   shard-local), per-engine resident state sizes (local comps / sets /
//!   super-flows vs the global component space), and the steady
//!   two-plane-fault epoch cost under the narrow (blaming-planes)
//!   refinement scope vs the historical full-spine scope;
//! * **verdict store** (schema v4): durable-segment append latency and
//!   on-disk size per 1k epochs, reopen/replay time, and history /
//!   provenance query latency against the durable tier;
//! * **kernels** (schema v5): the resolved SIMD dispatch level, flip
//!   throughput under forced-portable vs forced-SIMD engines on the same
//!   evidence, per-kernel ns/element (fabric Δ sweep, initial-Δ
//!   accumulate, argmax) scalar vs SIMD on synthetic arrays, and the
//!   term-table build cost the cold path pays to make flips
//!   transcendental-free;
//! * **pipelined execution** (schema v6): per-stage costs of the
//!   overlapped epoch pipeline on the spine-heavy fixture — the
//!   assembly-stage cost (`stage_prepare_ms`, measured in pipelined
//!   mode), the collect-side merge and slowest shard chain (measured
//!   sequentially, uncontended), the derived multi-core steady-wall
//!   model `max(prepare + merge, critical)` and its ratio to the
//!   critical path (`wall_over_critical`, CI-gated ≤ 1.5), plus the
//!   degenerate single-core measured pipelined wall for honesty;
//! * **approximate coalescing** (schema v7): exact vs approx
//!   (bucketed, default ε) super-flow counts and spine-engine /
//!   warm-epoch times on the heavy-tail Pareto fixture — where exact
//!   `(sent, bad)` keys barely repeat — plus the measured likelihood
//!   drift bound, the search's decision margin, the `proven_exact`
//!   certificate (margin > 2 × bound), and per-mode term-table sizes.
//!   The `large` scale exists for this section: heavy-tailed reduction
//!   claims only become visible well above the smoke scale.
//!
//! ```text
//! cargo run --release -p flock-bench --bin bench-report -- \
//!     [--scale smoke|small|medium|large] [--samples N] [--out BENCH_stream.json]
//! ```
//!
//! The `bench-diff` subcommand is the CI perf-regression gate: it
//! compares a fresh report against the committed baseline and exits
//! non-zero when the warm-epoch or flip-throughput *best-observed*
//! values (min time / max throughput — robust to co-tenant noise on
//! shared runners, where medians flap) regress more than the allowed
//! fraction (default 15%):
//!
//! ```text
//! bench-report bench-diff --baseline ci/BENCH_baseline_smoke.json \
//!     --current BENCH_stream.json [--max-regress 0.15] \
//!     [--floor key=value]... [--ceiling key=value]...
//! ```
//!
//! `--floor key=value` and `--ceiling key=value` (repeatable) are
//! *absolute* gates on top of the relative one: the run fails if the
//! current report's `key` is below the floor or above the ceiling. A
//! dotted key (`pipeline.wall_over_critical`) scopes the lookup to a
//! report section. CI uses a floor to hold the SIMD flip-throughput win
//! — a regression gate alone would happily ratchet down if a slow
//! baseline ever got committed — and a ceiling to hold the pipelined
//! steady-wall budget (`pipeline.wall_over_critical` ≤ 1.5).
//!
//! `--baseline` may be omitted when the `FLOCK_BENCH_BASELINE`
//! environment variable names the baseline report — the hook for a
//! *rolling* baseline: CI downloads a recent main-branch
//! `BENCH_stream.json` artifact from the same runner class, points
//! `FLOCK_BENCH_BASELINE` at it, and falls back to the committed
//! machine-specific smoke baseline only when no artifact is available
//! (see `.github/workflows/ci.yml`).

use flock_bench::{
    arena_warmed_obs, arena_warmed_obs_mode, combined_touches, pareto_heavy_epochs, plane_shards,
    spine_heavy_epochs, spine_shard, steady_epochs, two_plane_fault_epochs,
};
use flock_core::{
    simd, Engine, EngineOptions, EngineStateSizes, FlockGreedy, HyperParams, KernelDispatch,
    TermTable,
};
use flock_store::{EpochRecord, Segment, StoreConfig, StoreQuery, Verdict, VerdictStore};
use flock_stream::{EpochConfig, Provenance, StreamConfig, StreamPipeline};
use flock_telemetry::{AnalysisMode, CoalesceMode, FlowObs, InputKind};
use flock_topology::{Component, LinkId};
use std::time::Instant;

const KINDS: [InputKind; 2] = [InputKind::A2, InputKind::P];

struct Scale {
    name: &'static str,
    servers: u32,
    flows_per_epoch: usize,
    spine_servers: u32,
    spine_flows: usize,
}

const SCALES: &[Scale] = &[
    Scale {
        name: "smoke",
        servers: 128,
        flows_per_epoch: 1_500,
        spine_servers: 128,
        spine_flows: 3_000,
    },
    Scale {
        name: "small",
        servers: 256,
        flows_per_epoch: 4_000,
        spine_servers: 256,
        spine_flows: 8_000,
    },
    Scale {
        name: "medium",
        servers: 512,
        flows_per_epoch: 8_000,
        spine_servers: 512,
        spine_flows: 16_000,
    },
    Scale {
        name: "large",
        servers: 1024,
        flows_per_epoch: 16_000,
        spine_servers: 1024,
        spine_flows: 32_000,
    },
];

/// Median and minimum of timed runs of `f`, in milliseconds. The
/// median is the representative datapoint; the minimum is the
/// noise-robust estimator the regression gate compares (external
/// interference only ever inflates a CPU-bound sample, so the best
/// observed run tracks the code's true cost across busy machines).
fn time_ms(samples: usize, mut f: impl FnMut()) -> (f64, f64) {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], times[0])
}

/// Median of timed runs of `f`, in milliseconds.
fn median_ms(samples: usize, f: impl FnMut()) -> f64 {
    time_ms(samples, f).0
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("bench-diff") {
        args.next();
        std::process::exit(bench_diff(args));
    }
    let mut out_path = "BENCH_stream.json".to_string();
    let mut scale_name = "small".to_string();
    let mut samples = 9usize;
    while let Some(a) = args.next() {
        let mut val = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match a.as_str() {
            "--out" => out_path = val("--out"),
            "--scale" => scale_name = val("--scale"),
            "--samples" => samples = val("--samples").parse().expect("--samples: integer"),
            other => panic!("unknown argument {other} (expected --out/--scale/--samples)"),
        }
    }
    let scale = SCALES
        .iter()
        .find(|s| s.name == scale_name)
        .unwrap_or_else(|| panic!("unknown scale {scale_name} (smoke|small|medium|large)"));

    eprintln!("bench-report: scale={} samples={samples}", scale.name);

    // ---- Steady-state stream numbers (warm vs cold). ----
    let fixture = steady_epochs(scale.servers, scale.flows_per_epoch, 4, 7);
    let topo = &fixture.topo;
    let mk_cfg = |warm: bool| StreamConfig {
        epoch: EpochConfig::tumbling(1_000),
        kinds: KINDS.to_vec(),
        mode: AnalysisMode::PerPacket,
        warm_start: warm,
        shard_by_pod: false,
        ..StreamConfig::paper_default()
    };
    let mut epoch_ms = [0.0f64; 2]; // [cold, warm]
    let mut warm_epoch_ms_min = 0.0f64;
    for (slot, warm) in [(0usize, false), (1usize, true)] {
        let mut pipe = StreamPipeline::new(topo, mk_cfg(warm));
        pipe.run_flows(0, 0, 1_000, &fixture.epochs[0]);
        let mut i = 1u64;
        let (median, min) = time_ms(samples, || {
            let flows = &fixture.epochs[(i as usize) % fixture.epochs.len()];
            pipe.run_flows(i, i * 1_000, (i + 1) * 1_000, flows);
            i += 1;
        });
        epoch_ms[slot] = median;
        if warm {
            warm_epoch_ms_min = min;
        }
    }

    // ---- Engine layer alone on identical observations. ----
    let obs = arena_warmed_obs(&fixture, &KINDS);
    let params = HyperParams::default();
    let cold_build_ms = median_ms(samples, || {
        std::hint::black_box(Engine::new(topo, &obs, params));
    });
    let mut engine = Engine::new(topo, &obs, params);
    let rebind_ms = median_ms(samples, || engine.rebind(topo, &obs));

    // Flip throughput: toggle a spread of components on and off, keeping
    // the hypothesis small (the searches' operating regime).
    let n = engine.n_comps() as u32;
    let stride = (n / 512).max(1);
    let comps: Vec<u32> = (0..n).step_by(stride as usize).collect();
    let flips_per_sample = (comps.len() * 2) as f64;
    let (flip_ms, flip_ms_min) = time_ms(samples, || {
        for &c in &comps {
            engine.flip(c);
            engine.flip(c);
        }
    });
    let flip_throughput = flips_per_sample / (flip_ms / 1e3);
    let flip_throughput_max = flips_per_sample / (flip_ms_min / 1e3);
    let coalesce_ratio_steady = obs.flows.len() as f64 / obs.coalesced_count().max(1) as f64;

    // ---- Kernel layer (schema v5). ----
    // Forced-dispatch flip throughput on the same engine shape as above:
    // the scalar fallback a non-AVX2 (or FLOCK_NO_SIMD=1) deployment
    // pays, and the SIMD payoff, on real evidence. Forcing `Avx2` clamps
    // to portable on hosts without it (`avx2_supported` says which), so
    // the two rows degenerate to the same number there.
    let dispatch = KernelDispatch::resolve();
    let avx2_supported = KernelDispatch::Avx2.is_supported();
    let mut flip_tp_forced = [[0.0f64; 2]; 2]; // [portable, simd] × [median, max]
    for (slot, k) in [
        (0usize, KernelDispatch::Portable),
        (1, KernelDispatch::Avx2),
    ] {
        let opts = EngineOptions {
            kernel: Some(k),
            ..Default::default()
        };
        let mut e = Engine::with_options(topo, &obs, params, None, opts);
        let (ms, ms_min) = time_ms(samples, || {
            for &c in &comps {
                e.flip(c);
                e.flip(c);
            }
        });
        flip_tp_forced[slot] = [
            flips_per_sample / (ms / 1e3),
            flips_per_sample / (ms_min / 1e3),
        ];
    }
    let (term_tables, term_entries) = engine.term_table_sizes();
    // Term-table build cost: interning 256 distinct (sent, bad, w)
    // tables (~40 `llf` evaluations each) — the one-time cold-build cost
    // that buys transcendental-free flips. Best-observed, like every
    // CPU-bound microbench here.
    let term_table_build_ms = time_ms(samples, || {
        let mut t = TermTable::new();
        for k in 0..256u64 {
            let w = 16 + (k % 48) as u32;
            std::hint::black_box(t.intern(&params, 100 + k, k % 50, w));
        }
    })
    .1;
    // Per-kernel ns/element on synthetic arrays sized like one
    // coalesced-set sweep (4096 lanes over a 512-entry term segment).
    const KN: usize = 4096;
    const KREPS: usize = 64;
    let ktbl: Vec<f64> = (0..512)
        .map(|i| ((i * 37) % 101) as f64 * 0.0173 - 0.9)
        .collect();
    let kg_old: Vec<u32> = (0..KN).map(|i| (i * 7 % 256) as u32).collect();
    let kg_new: Vec<u32> = (0..KN).map(|i| (i * 11 % 256) as u32).collect();
    let klanes: Vec<u32> = (0..KN).map(|i| (i * 17 % KN) as u32).collect();
    let kgs: Vec<u32> = (0..KN).map(|i| (i * 3 % 512) as u32).collect();
    let kglobals: Vec<u32> = (0..KN as u32).rev().collect();
    let per_elem = |min_ms: f64| min_ms * 1e6 / ((KREPS * KN) as f64);
    let mut fabric_ns = [0.0f64; 2]; // [scalar, simd] throughout
    let mut initial_ns = [0.0f64; 2];
    let mut argmax_ns = [0.0f64; 2];
    for (slot, k) in [
        (0usize, KernelDispatch::Portable),
        (1, KernelDispatch::Avx2),
    ] {
        let mut kdelta = vec![0.0f64; KN];
        fabric_ns[slot] = per_elem(
            time_ms(samples, || {
                for _ in 0..KREPS {
                    simd::fabric_delta_sweep(
                        k,
                        &ktbl,
                        3,
                        4,
                        &kg_old,
                        &kg_new,
                        &klanes,
                        0.75,
                        -0.5,
                        0.25,
                        &mut kdelta,
                    );
                }
            })
            .1,
        );
        let mut ksums = vec![0.0f64; KN];
        initial_ns[slot] = per_elem(
            time_ms(samples, || {
                for _ in 0..KREPS {
                    simd::weighted_table_accumulate(k, &ktbl, &kgs, 1.25, &mut ksums);
                }
            })
            .1,
        );
        argmax_ns[slot] = per_elem(
            time_ms(samples, || {
                for _ in 0..KREPS {
                    std::hint::black_box(simd::argmax_gain(k, &kdelta, &ksums, &kglobals));
                }
            })
            .1,
        );
    }

    // ---- Evidence coalescing on the spine-heavy fixture. ----
    let spine_fixture = spine_heavy_epochs(scale.spine_servers, scale.spine_flows, 4, 11);
    let stopo = &spine_fixture.topo;
    let mut sharded_ms = [0.0f64; 2]; // [raw, coalesced]
    let mut spine_super_flows = 0usize;
    let mut spine_raw_obs = 0usize;
    for (slot, coalesce) in [(0usize, false), (1usize, true)] {
        let mut pipe = StreamPipeline::new(
            stopo,
            StreamConfig {
                epoch: EpochConfig::tumbling(1_000),
                kinds: KINDS.to_vec(),
                mode: AnalysisMode::PerPacket,
                warm_start: true,
                shard_by_pod: true,
                spine_planes: false,
                coalesce,
                ..StreamConfig::paper_default()
            },
        );
        let primed = pipe.run_flows(0, 0, 1_000, &spine_fixture.epochs[0]);
        if coalesce {
            let spine = primed
                .shards
                .iter()
                .find(|s| s.label == "spine")
                .expect("pod plan has a spine shard");
            spine_super_flows = spine.flows;
            spine_raw_obs = spine.raw_flows;
        }
        let mut i = 1u64;
        sharded_ms[slot] = median_ms(samples, || {
            let flows = &spine_fixture.epochs[(i as usize) % spine_fixture.epochs.len()];
            pipe.run_flows(i, i * 1_000, (i + 1) * 1_000, flows);
            i += 1;
        });
    }

    // Spine shard engine alone (rebind + warm search), raw vs coalesced —
    // the same harness the `evidence_coalesce` bench times.
    let sobs = arena_warmed_obs(&spine_fixture, &KINDS);
    let (spine, touch) = spine_shard(stopo, &sobs);
    let stouches = combined_touches(stopo, &sobs, &touch);
    let filter = |i: usize, _: &FlowObs| spine.relevant_combined(stouches[i]);
    let greedy = FlockGreedy::default();
    let mut spine_engine_ms = [0.0f64; 2]; // [raw, coalesced]
    for (slot, coalesce) in [(0usize, false), (1usize, true)] {
        let opts = EngineOptions {
            coalesce,
            ..Default::default()
        };
        let mut e = Engine::with_options(stopo, &sobs, params, Some(&filter), opts);
        let seed: Vec<u32> = {
            let (picked, _) = greedy.search(&mut e);
            picked.iter().map(|(c, _)| *c).collect()
        };
        spine_engine_ms[slot] = median_ms(samples, || {
            e.rebind_filtered(stopo, &sobs, Some(&filter));
            greedy.search_warm(&mut e, &seed);
        });
    }

    // ---- Approximate coalescing on the heavy-tail Pareto fixture. ----
    // Fan-in traffic with Pareto(α=1.05) flow sizes makes exact
    // `(sent, bad)` keys nearly unique, so exact coalescing barely
    // helps; log-spaced bucketing at the default ε collapses the tail.
    // Measured on passive-only telemetry: under A2 the per-link noise
    // flags (and path-pins) nearly every elephant, and singleton path
    // sets cap coalescing at any tolerance — passive ECMP evidence is
    // where the approximation has headroom. Reported per mode:
    // super-flow counts, the spine-engine rebind + warm-search time, the
    // full warm-epoch pipeline time, the term-table footprint, and the
    // drift-bound certificate (`proven_exact` ⇔ margin > 2 × bound).
    let pareto_fixture = pareto_heavy_epochs(scale.spine_servers, scale.spine_flows, 4, 17);
    let patopo = &pareto_fixture.topo;
    const PARETO_KINDS: [InputKind; 1] = [InputKind::P];
    let approx_mode = CoalesceMode::approx_default();
    let mut pareto_engine_ms = [0.0f64; 2]; // [exact, approx]
    let mut pareto_flows = [0usize; 2];
    let mut pareto_tt_entries = [0usize; 2];
    let mut pareto_raw_obs = 0usize;
    let mut pareto_drift = 0.0f64;
    let mut pareto_margin = f64::INFINITY;
    for (slot, mode) in [(0usize, CoalesceMode::Exact), (1, approx_mode)] {
        let pobs = arena_warmed_obs_mode(&pareto_fixture, &PARETO_KINDS, mode);
        let (shard, touch) = spine_shard(patopo, &pobs);
        let touches = combined_touches(patopo, &pobs, &touch);
        let filter = |i: usize, _: &FlowObs| shard.relevant_combined(touches[i]);
        let opts = EngineOptions {
            coalesce: true,
            mode,
            ..Default::default()
        };
        let mut e = Engine::with_options(patopo, &pobs, params, Some(&filter), opts);
        pareto_flows[slot] = e.n_flows();
        pareto_tt_entries[slot] = e.term_table_sizes().1;
        if slot == 0 {
            pareto_raw_obs = e.n_observations();
        }
        let seed: Vec<u32> = {
            let (picked, _) = greedy.search(&mut e);
            picked.iter().map(|(c, _)| *c).collect()
        };
        pareto_engine_ms[slot] = median_ms(samples, || {
            e.rebind_filtered(patopo, &pobs, Some(&filter));
            greedy.search_warm(&mut e, &seed);
        });
        if slot == 1 {
            e.rebind_filtered(patopo, &pobs, Some(&filter));
            let out = greedy.search_warm_deadline(&mut e, &seed, None);
            pareto_drift = e.drift_bound();
            pareto_margin = out.margin;
        }
    }
    let pareto_proven = pareto_drift == 0.0 || pareto_margin > 2.0 * pareto_drift;
    let mut pareto_epoch_ms = [0.0f64; 2]; // [exact, approx]
    for (slot, mode) in [(0usize, CoalesceMode::Exact), (1, approx_mode)] {
        let mut pipe = StreamPipeline::new(
            patopo,
            StreamConfig {
                epoch: EpochConfig::tumbling(1_000),
                kinds: PARETO_KINDS.to_vec(),
                mode: AnalysisMode::PerPacket,
                warm_start: true,
                shard_by_pod: true,
                spine_planes: false,
                coalesce: true,
                coalesce_mode: mode,
                ..StreamConfig::paper_default()
            },
        );
        pipe.run_flows(0, 0, 1_000, &pareto_fixture.epochs[0]);
        let mut i = 1u64;
        pareto_epoch_ms[slot] = median_ms(samples, || {
            let flows = &pareto_fixture.epochs[(i as usize) % pareto_fixture.epochs.len()];
            pipe.run_flows(i, i * 1_000, (i + 1) * 1_000, flows);
            i += 1;
        });
    }

    // ---- Spine-plane sharding on traced evidence (same fixture). ----
    // Traced (INT-kind) path sets are plane-disjoint, so the per-plane
    // engines see a clean partition of the spine evidence. Reported:
    // the per-plane *critical path* (max of the per-plane medians —
    // the spine-tier epoch time on a machine with one core per plane,
    // which is the deployment shape) and the parallel wall time on
    // this machine (degenerate on single-core runners).
    let pobs = arena_warmed_obs(&spine_fixture, &[InputKind::Int]);
    let greedy = FlockGreedy::default();
    let spine_tier_single_ms;
    let spine_single_rebind_ms;
    let spine_single_state: EngineStateSizes;
    {
        let (spine, touch) = spine_shard(stopo, &pobs);
        let touches = combined_touches(stopo, &pobs, &touch);
        let filter = |i: usize, _: &FlowObs| spine.relevant_combined(touches[i]);
        let mut e = Engine::new_filtered(stopo, &pobs, params, Some(&filter));
        let seed: Vec<u32> = {
            let (picked, _) = greedy.search(&mut e);
            picked.iter().map(|(c, _)| *c).collect()
        };
        spine_tier_single_ms = median_ms(samples, || {
            e.rebind_filtered(stopo, &pobs, Some(&filter));
            greedy.search_warm(&mut e, &seed);
        });
        // Rebind alone at zero arena growth: the per-epoch fixed cost
        // (state resets + flow-layer rebuild, no search).
        spine_single_rebind_ms = median_ms(samples, || {
            e.rebind_filtered(stopo, &pobs, Some(&filter));
        });
        spine_single_state = e.state_sizes();
    }
    let (planes, ptouch) = plane_shards(stopo, &pobs);
    let ptouches = combined_touches(stopo, &pobs, &ptouch);
    let ptouches = &ptouches;
    let n_planes = planes.len();
    let mut plane_engines: Vec<(Engine, Vec<u32>)> = planes
        .iter()
        .map(|shard| {
            let filter = |i: usize, _: &FlowObs| shard.relevant_combined(ptouches[i]);
            let mut e = Engine::new_filtered(stopo, &pobs, params, Some(&filter));
            let (picked, _) = greedy.search(&mut e);
            let seed: Vec<u32> = picked.iter().map(|(c, _)| *c).collect();
            (e, seed)
        })
        .collect();
    let plane_flows: Vec<usize> = plane_engines.iter().map(|(e, _)| e.n_flows()).collect();
    let per_plane_ms: Vec<f64> = planes
        .iter()
        .zip(plane_engines.iter_mut())
        .map(|(shard, (engine, seed))| {
            median_ms(samples, || {
                let filter = |i: usize, _: &FlowObs| shard.relevant_combined(ptouches[i]);
                engine.rebind_filtered(stopo, &pobs, Some(&filter));
                greedy.search_warm(engine, seed);
            })
        })
        .collect();
    let spine_tier_plane_critical_ms = per_plane_ms.iter().fold(0.0f64, |a, &b| a.max(b));
    // Fixed cost per plane engine: rebind alone at zero arena growth,
    // plus resident state sizes — both must track plane-local evidence
    // (≈ 1/n_planes of the single-spine engine), not the global arena.
    let per_plane_rebind_ms: Vec<f64> = planes
        .iter()
        .zip(plane_engines.iter_mut())
        .map(|(shard, (engine, _))| {
            median_ms(samples, || {
                let filter = |i: usize, _: &FlowObs| shard.relevant_combined(ptouches[i]);
                engine.rebind_filtered(stopo, &pobs, Some(&filter));
            })
        })
        .collect();
    let plane_rebind_max_ms = per_plane_rebind_ms.iter().fold(0.0f64, |a, &b| a.max(b));
    let plane_states: Vec<EngineStateSizes> =
        plane_engines.iter().map(|(e, _)| e.state_sizes()).collect();
    let pobs_ref = &pobs;
    let greedy_ref = &greedy;
    let spine_tier_planes_wall_ms = median_ms(samples, || {
        std::thread::scope(|scope| {
            for (shard, (engine, seed)) in planes.iter().zip(plane_engines.iter_mut()) {
                scope.spawn(move || {
                    let filter = |i: usize, _: &FlowObs| shard.relevant_combined(ptouches[i]);
                    engine.rebind_filtered(stopo, pobs_ref, Some(&filter));
                    greedy_ref.search_warm(engine, seed);
                });
            }
        });
    });
    // ---- Steady two-plane fault: refinement-pass scope cost. ----
    // With a persistent fault in each of two planes, the cross-plane
    // refinement runs every epoch; the narrow (blaming-planes) evidence
    // scope vs the historical full-spine scope is the whole difference
    // between the two pipelines.
    let two_plane = two_plane_fault_epochs(scale.spine_servers, scale.spine_flows, 4, 13);
    let tp_topo = &two_plane.topo;
    let mut refine_ms = [0.0f64; 2]; // [narrow, full]
    let mut refine_raw_obs = [0usize; 2];
    for (slot, full) in [(0usize, false), (1usize, true)] {
        let mut pipe = StreamPipeline::new(
            tp_topo,
            StreamConfig {
                epoch: EpochConfig::tumbling(1_000),
                kinds: vec![InputKind::Int],
                mode: AnalysisMode::PerPacket,
                warm_start: true,
                shard_by_pod: true,
                spine_planes: true,
                refine_full_spine: full,
                ..StreamConfig::paper_default()
            },
        );
        let mut primed = pipe.run_flows(0, 0, 1_000, &two_plane.epochs[0]);
        let mut i = 1u64;
        refine_ms[slot] = median_ms(samples, || {
            let flows = &two_plane.epochs[(i as usize) % two_plane.epochs.len()];
            primed = pipe.run_flows(i, i * 1_000, (i + 1) * 1_000, flows);
            i += 1;
        });
        refine_raw_obs[slot] = primed.refined.as_ref().map_or(0, |r| r.raw_flows);
    }
    // The refinement *engine* alone (rebind + warm re-search), narrow
    // blaming-planes scope vs full spine — the per-epoch cost a steady
    // two-plane fault adds on top of the plane engines. Planes 0 and 1
    // carry the fixture's faults, so they are the blaming planes.
    let tpobs = arena_warmed_obs(&two_plane, &[InputKind::Int]);
    let (_, tptouch) = spine_shard(tp_topo, &tpobs);
    let tptouches = combined_touches(tp_topo, &tpobs, &tptouch);
    let blame_mask = 0b11u64;
    let mut refine_engine_ms = [0.0f64; 2]; // [narrow, full]
    for (slot, full) in [(0usize, false), (1usize, true)] {
        let filter = |i: usize, _: &FlowObs| {
            if full {
                tptouches[i].spine
            } else {
                tptouches[i].planes & blame_mask != 0
            }
        };
        let mut e = Engine::new_filtered(tp_topo, &tpobs, params, Some(&filter));
        let seed: Vec<u32> = {
            let (picked, _) = greedy.search(&mut e);
            picked.iter().map(|(c, _)| *c).collect()
        };
        refine_engine_ms[slot] = median_ms(samples, || {
            e.rebind_filtered(tp_topo, &tpobs, Some(&filter));
            greedy.search_warm(&mut e, &seed);
        });
    }

    // ---- Pipelined epoch execution (schema v6). ----
    // Stage costs for the overlapped pipeline on the spine-heavy
    // fixture (pod + plane shards, the deployment shape). On a
    // multi-core box the steady-state wall per epoch is
    // max(assembly-stage cost, slowest shard chain): the assembler
    // thread prepares epoch N+1 while the shard pool still infers
    // epoch N. A single-core runner cannot exhibit that overlap
    // (`measured_pipelined_wall_ms` is its degenerate serialized
    // number, reported for honesty, like `spine_tier_planes_wall_ms`),
    // so the gated figure is a *model* from clean per-stage
    // measurements:
    // * `stage_prepare_ms` — assembly-stage cost measured in
    //   *pipelined* mode (includes the double-buffer handoff, delta
    //   capture and term prefill; measured there because in sequential
    //   mode the first submitted job's wake preempts the caller
    //   mid-submit on a busy box and mis-attributes shard work to the
    //   prepare stage);
    // * `stage_merge_ms` / `shard_critical_ms` — measured in
    //   *sequential* mode, where collector and shards run uncontended.
    let pp_pipe = |pipelined: bool| {
        StreamPipeline::new(
            stopo,
            StreamConfig {
                epoch: EpochConfig::tumbling(1_000),
                kinds: KINDS.to_vec(),
                mode: AnalysisMode::PerPacket,
                warm_start: true,
                shard_by_pod: true,
                spine_planes: true,
                pipelined,
                ..StreamConfig::paper_default()
            },
        )
    };
    let median = |xs: &mut Vec<f64>| {
        xs.sort_by(f64::total_cmp);
        xs[xs.len() / 2]
    };
    let min_of = |xs: &[f64]| xs.iter().copied().fold(f64::INFINITY, f64::min);
    let critical_of = |rep: &flock_stream::EpochReport| {
        let shard_max = rep
            .shards
            .iter()
            .map(|s| s.elapsed.as_secs_f64() * 1e3)
            .fold(0.0f64, f64::max);
        let refine = rep
            .refined
            .as_ref()
            .map_or(0.0, |r| r.elapsed.as_secs_f64() * 1e3);
        shard_max + refine
    };
    let (seq_epoch_ms, stage_merge_ms, shard_critical_ms, merge_min, critical_min) = {
        let mut pipe = pp_pipe(false);
        pipe.run_flows(0, 0, 1_000, &spine_fixture.epochs[0]);
        let (mut totals, mut merges, mut criticals) = (Vec::new(), Vec::new(), Vec::new());
        for s in 1..=samples as u64 {
            let flows = &spine_fixture.epochs[(s as usize) % spine_fixture.epochs.len()];
            let t = Instant::now();
            let rep = pipe.run_flows(s, s * 1_000, (s + 1) * 1_000, flows);
            totals.push(t.elapsed().as_secs_f64() * 1e3);
            merges.push(rep.stages.merge.as_secs_f64() * 1e3);
            criticals.push(critical_of(&rep));
        }
        let (merge_min, critical_min) = (min_of(&merges), min_of(&criticals));
        (
            median(&mut totals),
            median(&mut merges),
            median(&mut criticals),
            merge_min,
            critical_min,
        )
    };
    let (stage_prepare_ms, prepare_min, pipelined_wall_ms) = {
        let mut pipe = pp_pipe(true);
        pipe.submit_flows(0, 0, 1_000, &spine_fixture.epochs[0]);
        // 4× the sample count: on a single-core runner the assembly
        // stage timeshares with the in-flight shard jobs, so its
        // best-observed value needs more epochs to catch an
        // uncontended window.
        let pp_epochs = 4 * samples as u64;
        let t0 = Instant::now();
        let mut reports = Vec::new();
        for s in 1..=pp_epochs {
            let flows = &spine_fixture.epochs[(s as usize) % spine_fixture.epochs.len()];
            reports.extend(pipe.submit_flows(s, s * 1_000, (s + 1) * 1_000, flows));
        }
        reports.extend(pipe.flush_inflight());
        let wall = t0.elapsed().as_secs_f64() * 1e3 / pp_epochs as f64;
        // The first collected report is epoch 0: its prepare paid the
        // cold arena build, not the steady-state cost — drop it.
        let mut prepares: Vec<f64> = reports
            .iter()
            .filter(|r| r.epoch_index > 0)
            .map(|r| r.stages.prepare.as_secs_f64() * 1e3)
            .collect();
        let prepare_min = min_of(&prepares);
        (median(&mut prepares), prepare_min, wall)
    };
    let steady_wall_model_ms = (stage_prepare_ms + stage_merge_ms).max(shard_critical_ms);
    // The gated ratio uses best-observed stages on *both* sides:
    // co-tenant noise only ever inflates a CPU-bound sample, and a
    // quotient of two flapping medians flaps worse than either.
    let wall_over_critical = (prepare_min + merge_min).max(critical_min) / critical_min.max(1e-9);

    // ---- Verdict store (schema v4): append + query latency, size. ----
    // A fixed synthetic verdict stream (3 verdicts/epoch, daemon-shaped
    // provenance) keeps the datapoint comparable across PRs regardless
    // of pipeline behavior.
    let store_path =
        std::env::temp_dir().join(format!("flock_bench_store_{}.seg", std::process::id()));
    let _ = std::fs::remove_file(&store_path);
    let (store_append_1k_ms, store_bytes_1k) = {
        let mut seg = Segment::create(&store_path).expect("create bench segment");
        let t = Instant::now();
        for e in 0..1_000u64 {
            seg.append(&store_record(e)).expect("append");
        }
        seg.sync().expect("sync");
        (t.elapsed().as_secs_f64() * 1e3, seg.file_bytes())
    };
    // Reopen replay: rebuild the blame index, alerts, and ring from the
    // 1k durable epochs.
    let store_open_1k_ms = median_ms(samples, || {
        std::hint::black_box(
            VerdictStore::open(StoreConfig::default(), &store_path).expect("reopen"),
        );
    });
    let mut store = VerdictStore::open(StoreConfig::default(), &store_path).expect("reopen");
    let store_comp = Component::Link(LinkId(40));
    // Query latency, µs/query over batches of 100: history hits the
    // in-memory blame index; provenance epochs stay far below the ring
    // floor, so every read goes through the durable tier (seek+decode).
    let store_history_us = median_ms(samples, || {
        for _ in 0..100 {
            std::hint::black_box(store.history(store_comp));
        }
    }) * 10.0;
    let mut qe = 0u64;
    let store_provenance_us = median_ms(samples, || {
        for _ in 0..100 {
            qe = (qe + 7) % 900;
            std::hint::black_box(store.provenance(store_comp, qe));
        }
    }) * 10.0;
    drop(store);
    let _ = std::fs::remove_file(&store_path);

    let plane_flows_json = plane_flows
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    let fmt_ms_list = |xs: &[f64]| {
        xs.iter()
            .map(|v| format!("{v:.4}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let per_plane_rebind_json = fmt_ms_list(&per_plane_rebind_ms);
    let plane_comps_json = plane_states
        .iter()
        .map(|s| s.comps.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let plane_sets_json = plane_states
        .iter()
        .map(|s| s.sets.to_string())
        .collect::<Vec<_>>()
        .join(", ");

    let json = format!(
        "{{\n  \"schema\": \"flock-bench-report/v7\",\n  \"scale\": \"{scale_name}\",\n  \
         \"samples\": {samples},\n  \"stream\": {{\n    \"cold_epoch_ms\": {:.4},\n    \
         \"warm_epoch_ms\": {:.4},\n    \"warm_epoch_ms_min\": {:.4},\n    \
         \"engine_cold_build_ms\": {:.4},\n    \
         \"engine_rebind_ms\": {:.4},\n    \"flip_throughput_per_s\": {:.0},\n    \
         \"flip_throughput_per_s_max\": {:.0},\n    \
         \"coalesce_ratio\": {:.3}\n  }},\n  \"kernels\": {{\n    \
         \"dispatch\": \"{}\",\n    \"avx2_supported\": {avx2_supported},\n    \
         \"flip_throughput_portable_per_s\": {:.0},\n    \
         \"flip_throughput_portable_per_s_max\": {:.0},\n    \
         \"flip_throughput_simd_per_s\": {:.0},\n    \
         \"flip_throughput_simd_per_s_max\": {:.0},\n    \
         \"fabric_sweep_ns_per_elem_scalar\": {:.3},\n    \
         \"fabric_sweep_ns_per_elem_simd\": {:.3},\n    \
         \"initial_delta_ns_per_elem_scalar\": {:.3},\n    \
         \"initial_delta_ns_per_elem_simd\": {:.3},\n    \
         \"argmax_ns_per_elem_scalar\": {:.3},\n    \
         \"argmax_ns_per_elem_simd\": {:.3},\n    \
         \"term_table_entries\": {term_entries},\n    \
         \"term_table_tables\": {term_tables},\n    \
         \"term_table_build_ms\": {:.4}\n  }},\n  \"coalesce\": {{\n    \
         \"sharded_epoch_raw_ms\": {:.4},\n    \"sharded_epoch_coalesced_ms\": {:.4},\n    \
         \"sharded_epoch_speedup\": {:.3},\n    \"spine_engine_raw_ms\": {:.4},\n    \
         \"spine_engine_coalesced_ms\": {:.4},\n    \"spine_engine_speedup\": {:.3},\n    \
         \"spine_raw_observations\": {spine_raw_obs},\n    \
         \"spine_super_flows\": {spine_super_flows},\n    \"spine_coalesce_ratio\": {:.3}\n  }},\n  \
         \"approx\": {{\n    \"eps\": {:.4},\n    \
         \"pareto_raw_observations\": {pareto_raw_obs},\n    \
         \"super_flows_exact\": {},\n    \"super_flows_approx\": {},\n    \
         \"super_flow_reduction\": {:.3},\n    \
         \"coalesce_ratio_exact\": {:.3},\n    \"coalesce_ratio_approx\": {:.3},\n    \
         \"spine_engine_exact_ms\": {:.4},\n    \"spine_engine_approx_ms\": {:.4},\n    \
         \"spine_engine_speedup\": {:.3},\n    \
         \"warm_epoch_exact_ms\": {:.4},\n    \"warm_epoch_approx_ms\": {:.4},\n    \
         \"warm_epoch_speedup\": {:.3},\n    \
         \"drift_bound\": {:.6},\n    \"decision_margin\": {:.6},\n    \
         \"proven_exact\": {pareto_proven},\n    \
         \"term_table_entries_exact\": {},\n    \"term_table_entries_approx\": {}\n  }},\n  \
         \"planes\": {{\n    \"n_planes\": {n_planes},\n    \
         \"spine_tier_single_ms\": {:.4},\n    \"spine_tier_plane_critical_ms\": {:.4},\n    \
         \"spine_tier_planes_wall_ms\": {:.4},\n    \"spine_tier_plane_speedup\": {:.3},\n    \
         \"per_plane_super_flows\": [{plane_flows_json}]\n  }},\n  \
         \"fixed_cost\": {{\n    \
         \"single_spine_rebind_ms\": {:.4},\n    \"plane_rebind_max_ms\": {:.4},\n    \
         \"plane_rebind_speedup\": {:.3},\n    \
         \"per_plane_rebind_ms\": [{per_plane_rebind_json}],\n    \
         \"single_spine_state_comps\": {},\n    \"single_spine_state_sets\": {},\n    \
         \"global_comps\": {},\n    \
         \"per_plane_state_comps\": [{plane_comps_json}],\n    \
         \"per_plane_state_sets\": [{plane_sets_json}],\n    \
         \"refine_narrow_epoch_ms\": {:.4},\n    \"refine_full_epoch_ms\": {:.4},\n    \
         \"refine_engine_narrow_ms\": {:.4},\n    \"refine_engine_full_ms\": {:.4},\n    \
         \"refine_engine_speedup\": {:.3},\n    \
         \"refine_narrow_raw_obs\": {},\n    \"refine_full_raw_obs\": {}\n  }},\n  \
         \"pipeline\": {{\n    \
         \"seq_epoch_ms\": {:.4},\n    \"stage_prepare_ms\": {:.4},\n    \
         \"stage_merge_ms\": {:.4},\n    \"shard_critical_ms\": {:.4},\n    \
         \"steady_wall_model_ms\": {:.4},\n    \"wall_over_critical\": {:.3},\n    \
         \"measured_pipelined_wall_ms\": {:.4}\n  }},\n  \
         \"store\": {{\n    \
         \"append_ms_per_1k_epochs\": {:.3},\n    \"append_us\": {:.3},\n    \
         \"open_replay_ms_per_1k_epochs\": {:.3},\n    \
         \"history_query_us\": {:.3},\n    \"provenance_query_us\": {:.3},\n    \
         \"segment_bytes_per_1k_epochs\": {}\n  }}\n}}\n",
        epoch_ms[0],
        epoch_ms[1],
        warm_epoch_ms_min,
        cold_build_ms,
        rebind_ms,
        flip_throughput,
        flip_throughput_max,
        coalesce_ratio_steady,
        dispatch.label(),
        flip_tp_forced[0][0],
        flip_tp_forced[0][1],
        flip_tp_forced[1][0],
        flip_tp_forced[1][1],
        fabric_ns[0],
        fabric_ns[1],
        initial_ns[0],
        initial_ns[1],
        argmax_ns[0],
        argmax_ns[1],
        term_table_build_ms,
        sharded_ms[0],
        sharded_ms[1],
        sharded_ms[0] / sharded_ms[1],
        spine_engine_ms[0],
        spine_engine_ms[1],
        spine_engine_ms[0] / spine_engine_ms[1],
        spine_raw_obs as f64 / spine_super_flows.max(1) as f64,
        approx_mode.eps(),
        pareto_flows[0],
        pareto_flows[1],
        pareto_flows[0] as f64 / pareto_flows[1].max(1) as f64,
        pareto_raw_obs as f64 / pareto_flows[0].max(1) as f64,
        pareto_raw_obs as f64 / pareto_flows[1].max(1) as f64,
        pareto_engine_ms[0],
        pareto_engine_ms[1],
        pareto_engine_ms[0] / pareto_engine_ms[1].max(1e-9),
        pareto_epoch_ms[0],
        pareto_epoch_ms[1],
        pareto_epoch_ms[0] / pareto_epoch_ms[1].max(1e-9),
        pareto_drift,
        pareto_margin.min(1e12),
        pareto_tt_entries[0],
        pareto_tt_entries[1],
        spine_tier_single_ms,
        spine_tier_plane_critical_ms,
        spine_tier_planes_wall_ms,
        spine_tier_single_ms / spine_tier_plane_critical_ms,
        spine_single_rebind_ms,
        plane_rebind_max_ms,
        spine_single_rebind_ms / plane_rebind_max_ms.max(1e-9),
        spine_single_state.comps,
        spine_single_state.sets,
        spine_single_state.global_comps,
        refine_ms[0],
        refine_ms[1],
        refine_engine_ms[0],
        refine_engine_ms[1],
        refine_engine_ms[1] / refine_engine_ms[0].max(1e-9),
        refine_raw_obs[0],
        refine_raw_obs[1],
        seq_epoch_ms,
        stage_prepare_ms,
        stage_merge_ms,
        shard_critical_ms,
        steady_wall_model_ms,
        wall_over_critical,
        pipelined_wall_ms,
        store_append_1k_ms,
        store_append_1k_ms, // µs/append == ms/1k appends
        store_open_1k_ms,
        store_history_us,
        store_provenance_us,
        store_bytes_1k,
    );
    std::fs::write(&out_path, &json).expect("write report");
    print!("{json}");
    eprintln!("bench-report: wrote {out_path}");
}

/// A synthetic daemon-shaped epoch record for the store benchmark:
/// three verdicts, each with full provenance (8 convicting sets).
fn store_record(epoch: u64) -> EpochRecord {
    let verdicts = (0..3u32)
        .map(|k| {
            let component = Component::Link(LinkId(40 + k));
            let score = 100.0 + epoch as f64 + k as f64;
            Verdict {
                component,
                score,
                provenance: Provenance {
                    component,
                    shard: format!("pod{k}"),
                    score,
                    super_flows: 180 + k,
                    raw_weight: 420.0,
                    sets: vec![1, 5, 9, 12, 20, 33, 41, 52],
                },
            }
        })
        .collect();
    EpochRecord {
        epoch_index: epoch,
        start_ms: epoch * 1_000,
        end_ms: (epoch + 1) * 1_000,
        records: 3_000,
        observations: 2_400,
        hypotheses_scanned: 40_000,
        runtime_us: 3_000,
        degraded: false,
        evidence_coverage: 1.0,
        degrade_reasons: Vec::new(),
        verdicts,
    }
}

/// Extract the number following `"key":` in a report (the reports are
/// emitted by this binary, so a flat string scan is reliable — no JSON
/// dependency needed in the offline build environment). A dotted key
/// (`section.metric`) scopes the scan to after the section header, so
/// gates can address a metric unambiguously even if another section
/// reuses the name.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let (text, key) = match key.split_once('.') {
        Some((section, metric)) => {
            let header = format!("\"{section}\":");
            (&text[text.find(&header)? + header.len()..], metric)
        }
        None => (text, key),
    };
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extract the string following `"key":` in a report.
fn json_string(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// The CI perf-regression gate. Exit codes: 0 = within budget, 1 = a
/// gated metric regressed beyond the budget, 2 = the comparison is
/// invalid (missing file/metric or mismatched scales).
fn bench_diff(mut args: std::iter::Peekable<impl Iterator<Item = String>>) -> i32 {
    let mut baseline_path = None;
    let mut current_path = None;
    let mut max_regress = 0.15f64;
    let mut floors: Vec<(String, f64)> = Vec::new();
    let mut ceilings: Vec<(String, f64)> = Vec::new();
    while let Some(a) = args.next() {
        let mut val = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match a.as_str() {
            "--baseline" => baseline_path = Some(val("--baseline")),
            "--current" => current_path = Some(val("--current")),
            "--max-regress" => {
                max_regress = val("--max-regress").parse().expect("--max-regress: float")
            }
            "--floor" | "--ceiling" => {
                let spec = val(&a);
                let (k, v) = spec
                    .split_once('=')
                    .unwrap_or_else(|| panic!("{a} takes key=value, got {spec}"));
                let parsed = (
                    k.to_string(),
                    v.parse()
                        .unwrap_or_else(|_| panic!("{a} value: float, got {v}")),
                );
                if a == "--floor" {
                    floors.push(parsed);
                } else {
                    ceilings.push(parsed);
                }
            }
            other => panic!("unknown bench-diff argument {other}"),
        }
    }
    // Baseline resolution order: explicit --baseline flag, then the
    // FLOCK_BENCH_BASELINE environment variable. The env hook is what
    // makes the gate portable across runner generations: CI can point it
    // at a rolling baseline (a recent main-branch BENCH_stream.json
    // artifact from the same runner class) instead of the committed
    // machine-specific smoke file.
    let baseline_path = baseline_path
        .or_else(|| {
            std::env::var("FLOCK_BENCH_BASELINE")
                .ok()
                .filter(|s| !s.is_empty())
        })
        .expect("bench-diff requires --baseline or FLOCK_BENCH_BASELINE");
    let current_path = current_path.expect("bench-diff requires --current");
    let read = |path: &str| -> Option<String> {
        match std::fs::read_to_string(path) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("bench-diff: cannot read {path}: {e}");
                None
            }
        }
    };
    let (Some(base), Some(cur)) = (read(&baseline_path), read(&current_path)) else {
        return 2;
    };
    let (bs, cs) = (json_string(&base, "scale"), json_string(&cur, "scale"));
    if bs.is_none() || bs != cs {
        eprintln!(
            "bench-diff: scale mismatch (baseline {bs:?} vs current {cs:?}) — \
             the gate only compares reports of the same --scale"
        );
        return 2;
    }

    // Gated metrics: (key, higher-is-worse). Warm epoch is the online
    // pipeline's steady-state cost; flip throughput is the inference
    // hot path. The gate compares the best-observed variants (min time
    // / max throughput): external load on a shared runner only ever
    // inflates a CPU-bound sample, so best-observed tracks the code's
    // true cost where the median flaps with machine noise.
    // Core gates existed from schema v1–v4 — missing means a broken
    // report, so the comparison itself is invalid. The kernel gates
    // (schema v5) and approx gate (schema v7) are *optional*: a rolling
    // baseline artifact can lag a schema bump by one main-branch run, so
    // an older baseline downgrades them to warn+skip instead of
    // poisoning the whole gate.
    let gates: [(&str, bool); 2] = [
        ("warm_epoch_ms_min", true),
        ("flip_throughput_per_s_max", false),
    ];
    let optional_gates: [(&str, bool); 6] = [
        ("flip_throughput_portable_per_s_max", false),
        ("flip_throughput_simd_per_s_max", false),
        ("fabric_sweep_ns_per_elem_simd", true),
        ("initial_delta_ns_per_elem_simd", true),
        ("argmax_ns_per_elem_simd", true),
        ("approx.super_flow_reduction", false),
    ];
    let mut failed = false;
    println!(
        "bench-diff: {current_path} vs {baseline_path} (budget {:.0}%)",
        max_regress * 100.0
    );
    for (key, higher_is_worse, required) in gates
        .iter()
        .map(|&(k, h)| (k, h, true))
        .chain(optional_gates.iter().map(|&(k, h)| (k, h, false)))
    {
        let (b, c) = (json_number(&base, key), json_number(&cur, key));
        let (Some(b), Some(c)) = (b, c) else {
            if required {
                eprintln!("bench-diff: metric {key} missing from one of the reports");
                return 2;
            }
            println!("  {key:>34}: missing from baseline or current (older schema?) — skipped");
            continue;
        };
        let regression = if higher_is_worse {
            c / b - 1.0
        } else {
            b / c - 1.0
        };
        let verdict = if regression > max_regress {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "  {key:>34}: baseline {b:>12.3}  current {c:>12.3}  ({:+.1}% {}) {verdict}",
            regression * 100.0,
            if higher_is_worse { "slower" } else { "lost" },
        );
    }
    // Absolute floors and ceilings: configured explicitly, so a missing
    // metric is an invalid comparison, not a skip. Floors hold wins that
    // a relative gate would ratchet away (throughput must stay above);
    // ceilings hold structural budgets (a cost ratio must stay below).
    for (bound, key, limit) in floors
        .iter()
        .map(|(k, v)| ("floor", k, v))
        .chain(ceilings.iter().map(|(k, v)| ("ceiling", k, v)))
    {
        let Some(c) = json_number(&cur, key) else {
            eprintln!("bench-diff: --{bound} metric {key} missing from the current report");
            return 2;
        };
        let breached = match bound {
            "floor" => c < *limit,
            _ => c > *limit,
        };
        let verdict = if breached {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        println!("  {key:>34}: {bound:>7}  {limit:>12.3}  current {c:>12.3}  {verdict}");
    }
    if failed {
        eprintln!(
            "bench-diff: perf regression beyond the {:.0}% budget — if intentional, \
             regenerate the baseline with `bench-report --scale <scale> --out <baseline>`",
            max_regress * 100.0
        );
        1
    } else {
        0
    }
}
