//! `bench-report` — machine-readable perf datapoints for the online
//! pipeline, written as JSON so every PR leaves a comparable perf
//! trajectory entry (CI runs this at `--scale smoke` and uploads
//! `BENCH_stream.json` as an artifact).
//!
//! Reported numbers (medians over `--samples` runs):
//! * steady-state pipeline epoch cost, warm vs cold;
//! * engine layer alone: warm rebind vs cold build;
//! * flip throughput (JLE flips/s on a built engine);
//! * evidence coalescing on the spine-heavy fixture: sharded epoch time
//!   coalesced vs raw, the spine-shard engine alone, and the spine
//!   shard's coalesce ratio (raw observations per super-flow).
//!
//! ```text
//! cargo run --release -p flock-bench --bin bench-report -- \
//!     [--scale smoke|small|medium] [--samples N] [--out BENCH_stream.json]
//! ```

use flock_bench::{arena_warmed_obs, spine_heavy_epochs, spine_shard, steady_epochs};
use flock_core::{Engine, EngineOptions, FlockGreedy, HyperParams};
use flock_stream::{EpochConfig, StreamConfig, StreamPipeline};
use flock_telemetry::{AnalysisMode, FlowObs, InputKind};
use std::time::Instant;

const KINDS: [InputKind; 2] = [InputKind::A2, InputKind::P];

struct Scale {
    name: &'static str,
    servers: u32,
    flows_per_epoch: usize,
    spine_servers: u32,
    spine_flows: usize,
}

const SCALES: &[Scale] = &[
    Scale {
        name: "smoke",
        servers: 128,
        flows_per_epoch: 1_500,
        spine_servers: 128,
        spine_flows: 3_000,
    },
    Scale {
        name: "small",
        servers: 256,
        flows_per_epoch: 4_000,
        spine_servers: 256,
        spine_flows: 8_000,
    },
    Scale {
        name: "medium",
        servers: 512,
        flows_per_epoch: 8_000,
        spine_servers: 512,
        spine_flows: 16_000,
    },
];

/// Median of timed runs of `f`, in milliseconds.
fn median_ms(samples: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    let mut out_path = "BENCH_stream.json".to_string();
    let mut scale_name = "small".to_string();
    let mut samples = 9usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match a.as_str() {
            "--out" => out_path = val("--out"),
            "--scale" => scale_name = val("--scale"),
            "--samples" => samples = val("--samples").parse().expect("--samples: integer"),
            other => panic!("unknown argument {other} (expected --out/--scale/--samples)"),
        }
    }
    let scale = SCALES
        .iter()
        .find(|s| s.name == scale_name)
        .unwrap_or_else(|| panic!("unknown scale {scale_name} (smoke|small|medium)"));

    eprintln!("bench-report: scale={} samples={samples}", scale.name);

    // ---- Steady-state stream numbers (warm vs cold). ----
    let fixture = steady_epochs(scale.servers, scale.flows_per_epoch, 4, 7);
    let topo = &fixture.topo;
    let mk_cfg = |warm: bool| StreamConfig {
        epoch: EpochConfig::tumbling(1_000),
        kinds: KINDS.to_vec(),
        mode: AnalysisMode::PerPacket,
        warm_start: warm,
        shard_by_pod: false,
        ..StreamConfig::paper_default()
    };
    let mut epoch_ms = [0.0f64; 2]; // [cold, warm]
    for (slot, warm) in [(0usize, false), (1usize, true)] {
        let mut pipe = StreamPipeline::new(topo, mk_cfg(warm));
        pipe.run_flows(0, 0, 1_000, &fixture.epochs[0]);
        let mut i = 1u64;
        epoch_ms[slot] = median_ms(samples, || {
            let flows = &fixture.epochs[(i as usize) % fixture.epochs.len()];
            pipe.run_flows(i, i * 1_000, (i + 1) * 1_000, flows);
            i += 1;
        });
    }

    // ---- Engine layer alone on identical observations. ----
    let obs = arena_warmed_obs(&fixture, &KINDS);
    let params = HyperParams::default();
    let cold_build_ms = median_ms(samples, || {
        std::hint::black_box(Engine::new(topo, &obs, params));
    });
    let mut engine = Engine::new(topo, &obs, params);
    let rebind_ms = median_ms(samples, || engine.rebind(topo, &obs));

    // Flip throughput: toggle a spread of components on and off, keeping
    // the hypothesis small (the searches' operating regime).
    let n = engine.n_comps() as u32;
    let stride = (n / 512).max(1);
    let comps: Vec<u32> = (0..n).step_by(stride as usize).collect();
    let flips_per_sample = (comps.len() * 2) as f64;
    let flip_ms = median_ms(samples, || {
        for &c in &comps {
            engine.flip(c);
            engine.flip(c);
        }
    });
    let flip_throughput = flips_per_sample / (flip_ms / 1e3);
    let coalesce_ratio_steady = obs.flows.len() as f64 / obs.coalesced_count().max(1) as f64;

    // ---- Evidence coalescing on the spine-heavy fixture. ----
    let spine_fixture = spine_heavy_epochs(scale.spine_servers, scale.spine_flows, 4, 11);
    let stopo = &spine_fixture.topo;
    let mut sharded_ms = [0.0f64; 2]; // [raw, coalesced]
    let mut spine_super_flows = 0usize;
    let mut spine_raw_obs = 0usize;
    for (slot, coalesce) in [(0usize, false), (1usize, true)] {
        let mut pipe = StreamPipeline::new(
            stopo,
            StreamConfig {
                epoch: EpochConfig::tumbling(1_000),
                kinds: KINDS.to_vec(),
                mode: AnalysisMode::PerPacket,
                warm_start: true,
                shard_by_pod: true,
                coalesce,
                ..StreamConfig::paper_default()
            },
        );
        let primed = pipe.run_flows(0, 0, 1_000, &spine_fixture.epochs[0]);
        if coalesce {
            let spine = primed
                .shards
                .iter()
                .find(|s| s.label == "spine")
                .expect("pod plan has a spine shard");
            spine_super_flows = spine.flows;
            spine_raw_obs = spine.raw_flows;
        }
        let mut i = 1u64;
        sharded_ms[slot] = median_ms(samples, || {
            let flows = &spine_fixture.epochs[(i as usize) % spine_fixture.epochs.len()];
            pipe.run_flows(i, i * 1_000, (i + 1) * 1_000, flows);
            i += 1;
        });
    }

    // Spine shard engine alone (rebind + warm search), raw vs coalesced —
    // the same harness the `evidence_coalesce` bench times.
    let sobs = arena_warmed_obs(&spine_fixture, &KINDS);
    let (spine, touch) = spine_shard(stopo, &sobs);
    let filter = |o: &FlowObs| {
        let (set_touch, prefix_touch) = touch.flow_touch(stopo, o);
        spine.relevant(set_touch, prefix_touch)
    };
    let greedy = FlockGreedy::default();
    let mut spine_engine_ms = [0.0f64; 2]; // [raw, coalesced]
    for (slot, coalesce) in [(0usize, false), (1usize, true)] {
        let opts = EngineOptions { coalesce };
        let mut e = Engine::with_options(stopo, &sobs, params, Some(&filter), opts);
        let seed: Vec<u32> = {
            let (picked, _) = greedy.search(&mut e);
            picked.iter().map(|(c, _)| *c).collect()
        };
        spine_engine_ms[slot] = median_ms(samples, || {
            e.rebind_filtered(stopo, &sobs, Some(&filter));
            greedy.search_warm(&mut e, &seed);
        });
    }

    let json = format!(
        "{{\n  \"schema\": \"flock-bench-report/v1\",\n  \"scale\": \"{scale_name}\",\n  \
         \"samples\": {samples},\n  \"stream\": {{\n    \"cold_epoch_ms\": {:.4},\n    \
         \"warm_epoch_ms\": {:.4},\n    \"engine_cold_build_ms\": {:.4},\n    \
         \"engine_rebind_ms\": {:.4},\n    \"flip_throughput_per_s\": {:.0},\n    \
         \"coalesce_ratio\": {:.3}\n  }},\n  \"coalesce\": {{\n    \
         \"sharded_epoch_raw_ms\": {:.4},\n    \"sharded_epoch_coalesced_ms\": {:.4},\n    \
         \"sharded_epoch_speedup\": {:.3},\n    \"spine_engine_raw_ms\": {:.4},\n    \
         \"spine_engine_coalesced_ms\": {:.4},\n    \"spine_engine_speedup\": {:.3},\n    \
         \"spine_raw_observations\": {spine_raw_obs},\n    \
         \"spine_super_flows\": {spine_super_flows},\n    \"spine_coalesce_ratio\": {:.3}\n  }}\n}}\n",
        epoch_ms[0],
        epoch_ms[1],
        cold_build_ms,
        rebind_ms,
        flip_throughput,
        coalesce_ratio_steady,
        sharded_ms[0],
        sharded_ms[1],
        sharded_ms[0] / sharded_ms[1],
        spine_engine_ms[0],
        spine_engine_ms[1],
        spine_engine_ms[0] / spine_engine_ms[1],
        spine_raw_obs as f64 / spine_super_flows.max(1) as f64,
    );
    std::fs::write(&out_path, &json).expect("write report");
    print!("{json}");
    eprintln!("bench-report: wrote {out_path}");
}
