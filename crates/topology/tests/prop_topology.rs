//! Property-based tests of topology construction, routing, and
//! degradation invariants.

use flock_topology::clos::{leaf_spine, three_tier, ClosParams, LeafSpineParams};
use flock_topology::irregular::omit_links;
use flock_topology::{NodeRole, Router};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_clos() -> impl Strategy<Value = ClosParams> {
    (2u32..5, 1u32..4, 1u32..4, 1u32..4, 1u32..5).prop_map(|(pods, tors, aggs, spines, hosts)| {
        ClosParams {
            pods,
            tors_per_pod: tors,
            aggs_per_pod: aggs,
            spines_per_plane: spines,
            hosts_per_tor: hosts,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn clos_counts_match_formula(p in arb_clos()) {
        let t = three_tier(p);
        prop_assert_eq!(t.hosts().len() as u32, p.total_hosts());
        prop_assert_eq!(t.link_count() as u32, p.total_links());
        // Reverse pairing is involutive and endpoint-swapping.
        for (id, l) in t.links() {
            prop_assert_eq!(t.link(l.reverse).reverse, id);
            prop_assert_eq!(t.link(l.reverse).src, l.dst);
        }
    }

    #[test]
    fn ecmp_widths_follow_structure(p in arb_clos()) {
        let t = three_tier(p);
        let r = Router::new(&t);
        let leaves: Vec<_> = t.switches().iter().copied()
            .filter(|s| t.node(*s).role == NodeRole::Leaf).collect();
        for &a in leaves.iter().take(3) {
            for &b in leaves.iter().rev().take(3) {
                if a == b { continue; }
                let ps = r.paths(a, b);
                let expect = if t.node(a).pod == t.node(b).pod {
                    p.aggs_per_pod as usize
                } else {
                    (p.aggs_per_pod * p.spines_per_plane) as usize
                };
                prop_assert_eq!(ps.len(), expect);
                for path in ps.iter() {
                    // Paths are valley-free: tiers rise then fall.
                    let nodes = path.nodes(&t, a);
                    let tiers: Vec<u8> = nodes.iter().map(|n| t.node(*n).role.tier()).collect();
                    let apex = tiers.iter().enumerate().max_by_key(|(_, v)| **v).unwrap().0;
                    prop_assert!(tiers[..=apex].windows(2).all(|w| w[0] < w[1]));
                    prop_assert!(tiers[apex..].windows(2).all(|w| w[0] > w[1]));
                }
            }
        }
    }

    #[test]
    fn leaf_spine_width_is_spine_count(spines in 1u32..6, leaves in 2u32..6, hosts in 1u32..4) {
        let p = LeafSpineParams { spines, leaves, hosts_per_leaf: hosts };
        let t = leaf_spine(p);
        let r = Router::new(&t);
        let ls: Vec<_> = t.switches().iter().copied()
            .filter(|s| t.node(*s).role == NodeRole::Leaf).collect();
        prop_assert_eq!(r.paths(ls[0], ls[1]).len(), spines as usize);
    }

    #[test]
    fn omission_preserves_counts_and_guardrails(p in arb_clos(), frac in 0.0f64..0.5, seed: u64) {
        let t = three_tier(p);
        let mut rng = StdRng::seed_from_u64(seed);
        let (t2, removed) = omit_links(&t, frac, &mut rng);
        prop_assert_eq!(t2.hosts().len(), t.hosts().len());
        prop_assert_eq!(t2.link_count(), t.link_count() - 2 * removed);
        // Every leaf/agg keeps an uplink.
        for (id, n) in t2.nodes() {
            if matches!(n.role, NodeRole::Leaf | NodeRole::Agg) {
                let ups = t2.out_links(id).iter()
                    .filter(|l| t2.node(t2.link(**l).dst).role.tier() > n.role.tier())
                    .count();
                prop_assert!(ups >= 1);
            }
        }
    }
}
