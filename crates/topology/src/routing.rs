//! Valley-free (up–down) ECMP shortest-path enumeration.
//!
//! Datacenter fabrics route traffic up towards the spine and then down
//! towards the destination; ECMP hashes a flow onto one of the equal-cost
//! shortest such paths. The PGM's path layer (§3.2) is exactly this path
//! set: for a flow with unknown routing (passive telemetry) the whole set
//! is the flow's parent path-nodes; for known-path telemetry (A1/A2/INT)
//! a single member is selected.
//!
//! Enumeration is implemented as two upward BFS sweeps (from the source
//! and destination switches) that meet at a common apex: a valley-free
//! path of shape `up* down*` is an up-path from the source joined to the
//! reverse of an up-path from the destination. This covers regular and
//! irregular Clos fabrics alike and yields *all* minimal-hop valley-free
//! paths.

use crate::graph::{LinkId, NodeId, Topology};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// A directed switch-to-switch path through the fabric, as a sequence of
/// links. The empty path (same source and destination switch) is valid and
/// arises for host pairs under the same ToR.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FabricPath {
    /// Links in traversal order; empty for a same-switch path.
    pub links: Vec<LinkId>,
}

impl FabricPath {
    /// Number of links (hops) in the path.
    #[inline]
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the path has no links (same-switch path).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The sequence of switches visited, starting from `src`.
    pub fn nodes(&self, topo: &Topology, src: NodeId) -> Vec<NodeId> {
        let mut out = vec![src];
        for l in &self.links {
            debug_assert_eq!(topo.link(*l).src, *out.last().unwrap());
            out.push(topo.link(*l).dst);
        }
        out
    }
}

/// Shared handle to an ECMP path set (cheap to clone).
pub type PathSetHandle = Arc<Vec<FabricPath>>;

/// ECMP route computer with per-pair caching.
///
/// `Router` is `Sync`: the cache uses a `RwLock`, so evaluation code can
/// resolve path sets from worker threads.
pub struct Router<'t> {
    topo: &'t Topology,
    cache: RwLock<HashMap<(NodeId, NodeId), PathSetHandle>>,
}

impl<'t> Router<'t> {
    /// Create a router over `topo`.
    pub fn new(topo: &'t Topology) -> Self {
        Router {
            topo,
            cache: RwLock::new(HashMap::new()),
        }
    }

    /// The topology this router serves.
    pub fn topology(&self) -> &'t Topology {
        self.topo
    }

    /// All minimal valley-free paths from switch `src` to switch `dst`.
    ///
    /// Returns an empty set when no valley-free route exists (possible in
    /// heavily degraded irregular topologies; callers treat such pairs as
    /// unroutable). Results are cached per ordered pair.
    pub fn paths(&self, src: NodeId, dst: NodeId) -> PathSetHandle {
        debug_assert!(self.topo.node(src).role.is_switch());
        debug_assert!(self.topo.node(dst).role.is_switch());
        if let Some(h) = self.cache.read().unwrap().get(&(src, dst)) {
            return Arc::clone(h);
        }
        let computed = Arc::new(self.compute(src, dst));
        let mut w = self.cache.write().unwrap();
        Arc::clone(w.entry((src, dst)).or_insert(computed))
    }

    /// Fabric paths between the ToRs of two hosts (the host attachment
    /// links are *not* included; the model layer prepends/appends them).
    pub fn host_fabric_paths(&self, h1: NodeId, h2: NodeId) -> PathSetHandle {
        self.paths(self.topo.host_leaf(h1), self.topo.host_leaf(h2))
    }

    /// Number of cached pairs (for tests and capacity diagnostics).
    pub fn cached_pairs(&self) -> usize {
        self.cache.read().unwrap().len()
    }

    fn compute(&self, src: NodeId, dst: NodeId) -> Vec<FabricPath> {
        if src == dst {
            return vec![FabricPath { links: Vec::new() }];
        }
        let up_src = self.up_bfs(src);
        let up_dst = self.up_bfs(dst);

        // Find the minimal total length over all meeting points.
        let mut best = usize::MAX;
        for (node, sa) in &up_src {
            if let Some(sb) = up_dst.get(node) {
                best = best.min(sa.dist + sb.dist);
            }
        }
        if best == usize::MAX {
            return Vec::new();
        }

        let mut out = Vec::new();
        for (node, sa) in &up_src {
            let Some(sb) = up_dst.get(node) else { continue };
            if sa.dist + sb.dist != best {
                continue;
            }
            let ups = enumerate_up_paths(self.topo, &up_src, *node);
            let downs = enumerate_up_paths(self.topo, &up_dst, *node);
            for u in &ups {
                for d in &downs {
                    let mut links = u.clone();
                    // The down half is the reverse of an up path from dst.
                    links.extend(d.iter().rev().map(|l| self.topo.link(*l).reverse));
                    out.push(FabricPath { links });
                }
            }
        }
        // Deterministic order regardless of HashMap iteration.
        out.sort_by(|a, b| a.links.cmp(&b.links));
        out.dedup();
        out
    }

    /// Upward BFS: explore strictly tier-increasing links from `start`,
    /// recording distance and all shortest-path parent links per node.
    fn up_bfs(&self, start: NodeId) -> HashMap<NodeId, UpState> {
        let mut seen: HashMap<NodeId, UpState> = HashMap::new();
        seen.insert(
            start,
            UpState {
                dist: 0,
                parents: Vec::new(),
            },
        );
        let mut frontier = vec![start];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for node in frontier.drain(..) {
                let d = seen[&node].dist;
                let tier = self.topo.node(node).role.tier();
                for l in self.topo.out_links(node) {
                    let link = self.topo.link(*l);
                    if self.topo.node(link.dst).role.tier() <= tier {
                        continue; // only strictly upward
                    }
                    match seen.get_mut(&link.dst) {
                        None => {
                            seen.insert(
                                link.dst,
                                UpState {
                                    dist: d + 1,
                                    parents: vec![*l],
                                },
                            );
                            next.push(link.dst);
                        }
                        Some(st) if st.dist == d + 1 => st.parents.push(*l),
                        Some(_) => {}
                    }
                }
            }
            frontier = next;
        }
        seen
    }
}

#[derive(Debug, Clone)]
struct UpState {
    dist: usize,
    /// Links `u → this` on shortest up-paths.
    parents: Vec<LinkId>,
}

/// All shortest up-paths from the BFS root to `node`, each as the link
/// sequence root→…→node.
fn enumerate_up_paths(
    topo: &Topology,
    states: &HashMap<NodeId, UpState>,
    node: NodeId,
) -> Vec<Vec<LinkId>> {
    let st = &states[&node];
    if st.dist == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for pl in &st.parents {
        let parent = topo.link(*pl).src;
        for mut prefix in enumerate_up_paths(topo, states, parent) {
            prefix.push(*pl);
            out.push(prefix);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clos::{leaf_spine, three_tier, ClosParams, LeafSpineParams};
    use crate::graph::NodeRole;

    fn leaves_of(t: &Topology) -> Vec<NodeId> {
        t.switches()
            .iter()
            .copied()
            .filter(|s| t.node(*s).role == NodeRole::Leaf)
            .collect()
    }

    #[test]
    fn same_switch_has_empty_path() {
        let t = three_tier(ClosParams::tiny());
        let r = Router::new(&t);
        let l = leaves_of(&t)[0];
        let ps = r.paths(l, l);
        assert_eq!(ps.len(), 1);
        assert!(ps[0].is_empty());
    }

    #[test]
    fn intra_pod_path_count_is_aggs_per_pod() {
        let p = ClosParams::tiny();
        let t = three_tier(p);
        let r = Router::new(&t);
        let leaves = leaves_of(&t);
        // leaves 0 and 1 are in pod 0.
        let (a, b) = (leaves[0], leaves[1]);
        assert_eq!(t.node(a).pod, t.node(b).pod);
        let ps = r.paths(a, b);
        assert_eq!(ps.len(), p.aggs_per_pod as usize);
        for path in ps.iter() {
            assert_eq!(path.len(), 2, "tor-agg-tor");
            let nodes = path.nodes(&t, a);
            assert_eq!(*nodes.last().unwrap(), b);
        }
    }

    #[test]
    fn inter_pod_path_count_is_aggs_times_spines() {
        let p = ClosParams::tiny();
        let t = three_tier(p);
        let r = Router::new(&t);
        let leaves = leaves_of(&t);
        let (a, b) = (leaves[0], leaves[2]);
        assert_ne!(t.node(a).pod, t.node(b).pod);
        let ps = r.paths(a, b);
        assert_eq!(ps.len(), (p.aggs_per_pod * p.spines_per_plane) as usize);
        for path in ps.iter() {
            assert_eq!(path.len(), 4, "tor-agg-spine-agg-tor");
            assert_eq!(*path.nodes(&t, a).last().unwrap(), b);
        }
    }

    #[test]
    fn leaf_spine_paths_go_via_each_spine() {
        let p = LeafSpineParams::testbed();
        let t = leaf_spine(p);
        let r = Router::new(&t);
        let leaves = leaves_of(&t);
        let ps = r.paths(leaves[0], leaves[1]);
        assert_eq!(ps.len(), p.spines as usize);
    }

    #[test]
    fn leaf_to_spine_paths_are_up_only() {
        let p = ClosParams::tiny();
        let t = three_tier(p);
        let r = Router::new(&t);
        let leaf = leaves_of(&t)[0];
        let spine = t
            .switches()
            .iter()
            .copied()
            .find(|s| t.node(*s).role == NodeRole::Spine)
            .unwrap();
        let ps = r.paths(leaf, spine);
        // Exactly one plane connects this leaf's pod aggs to this spine:
        // tor → agg(plane of spine) → spine, one agg qualifies.
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].len(), 2);
    }

    #[test]
    fn caching_returns_same_handle() {
        let t = three_tier(ClosParams::tiny());
        let r = Router::new(&t);
        let leaves = leaves_of(&t);
        let p1 = r.paths(leaves[0], leaves[1]);
        let p2 = r.paths(leaves[0], leaves[1]);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(r.cached_pairs(), 1);
    }

    #[test]
    fn paths_are_link_consistent() {
        let t = three_tier(ClosParams::tiny());
        let r = Router::new(&t);
        let leaves = leaves_of(&t);
        for a in &leaves {
            for b in &leaves {
                for path in r.paths(*a, *b).iter() {
                    let nodes = path.nodes(&t, *a); // panics on inconsistency
                    assert_eq!(nodes.first(), Some(a));
                    assert_eq!(nodes.last(), Some(b));
                }
            }
        }
    }
}
