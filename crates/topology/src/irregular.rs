//! Derivation of "irregular" Clos topologies (§7.6).
//!
//! Real datacenters deviate from the symmetric Clos blueprint due to
//! failures, policies and piecemeal upgrades. The paper models this by
//! omitting a fraction of links from the fat tree. The generator here
//! removes random fabric *cables* (both directions at once) subject to
//! connectivity guardrails — every leaf keeps at least one uplink, every
//! aggregation switch keeps at least one uplink and one downlink — and the
//! caller can additionally verify full leaf-pair reachability with
//! [`all_leaf_pairs_routable`].

use crate::graph::{LinkId, NodeId, NodeRole, Topology, TopologyBuilder};
use crate::routing::Router;
use rand::seq::SliceRandom;
use rand::Rng;

/// Remove approximately `fraction` of the fabric cables from `topo`,
/// seeded by `rng`, while preserving minimum up/down degree at each
/// switch. Host attachment links are never removed.
///
/// Returns the degraded topology (node ids preserved, link ids reassigned)
/// together with the number of cables actually removed.
pub fn omit_links<R: Rng + ?Sized>(
    topo: &Topology,
    fraction: f64,
    rng: &mut R,
) -> (Topology, usize) {
    assert!((0.0..1.0).contains(&fraction), "fraction must be in [0,1)");
    // Candidate cables: canonical direction only (src id < dst id dedups the
    // two directions of each cable).
    let mut cables: Vec<LinkId> = topo
        .fabric_links()
        .into_iter()
        .filter(|l| topo.link(*l).src < topo.link(*l).dst)
        .collect();
    cables.shuffle(rng);
    let target = (cables.len() as f64 * fraction).round() as usize;

    // Degree bookkeeping: up-degree and down-degree per switch.
    let mut up_deg = vec![0usize; topo.node_count()];
    let mut down_deg = vec![0usize; topo.node_count()];
    for (_, link) in topo.links() {
        let (s, d) = (link.src, link.dst);
        if !(topo.node(s).role.is_switch() && topo.node(d).role.is_switch()) {
            continue;
        }
        if topo.node(d).role.tier() > topo.node(s).role.tier() {
            up_deg[s.idx()] += 1;
            down_deg[d.idx()] += 1;
        }
    }

    let min_up = |t: &Topology, n: NodeId| match t.node(n).role {
        NodeRole::Leaf | NodeRole::Agg => 1,
        _ => 0,
    };
    let min_down = |t: &Topology, n: NodeId| match t.node(n).role {
        NodeRole::Agg | NodeRole::Spine => 1,
        _ => 0,
    };

    let mut removed: Vec<bool> = vec![false; topo.link_count()];
    let mut removed_count = 0usize;
    for cable in cables {
        if removed_count >= target {
            break;
        }
        let link = topo.link(cable);
        // Identify the upward direction of this cable.
        let (lo, hi) = if topo.node(link.dst).role.tier() > topo.node(link.src).role.tier() {
            (link.src, link.dst)
        } else {
            (link.dst, link.src)
        };
        if up_deg[lo.idx()] <= min_up(topo, lo) || down_deg[hi.idx()] <= min_down(topo, hi) {
            continue; // would strand a switch
        }
        up_deg[lo.idx()] -= 1;
        down_deg[hi.idx()] -= 1;
        removed[cable.idx()] = true;
        removed[link.reverse.idx()] = true;
        removed_count += 1;
    }

    (rebuild_without(topo, &removed, fraction), removed_count)
}

/// Rebuild `topo` without the links marked in `removed` (both directions of
/// each removed cable must be marked).
fn rebuild_without(topo: &Topology, removed: &[bool], fraction: f64) -> Topology {
    let mut b = TopologyBuilder::new(format!("{}-irregular{:.0}pct", topo.name, fraction * 100.0));
    for (_, n) in topo.nodes() {
        b.add_node(n.role, n.pod, n.index_in_group);
    }
    for (id, link) in topo.links() {
        // Canonical direction only; `connect` adds both.
        if link.src < link.dst && !removed[id.idx()] {
            b.connect(link.src, link.dst);
        }
    }
    b.build()
}

/// Check that every ordered pair of distinct leaves has at least one
/// valley-free route. Quadratic in the number of leaves; intended for
/// experiment setup validation, not hot paths.
pub fn all_leaf_pairs_routable(topo: &Topology) -> bool {
    let router = Router::new(topo);
    let leaves: Vec<NodeId> = topo
        .switches()
        .iter()
        .copied()
        .filter(|s| topo.node(*s).role == NodeRole::Leaf)
        .collect();
    for a in &leaves {
        for b in &leaves {
            if a != b && router.paths(*a, *b).is_empty() {
                return false;
            }
        }
    }
    true
}

/// Convenience: derive an irregular topology, retrying with successive
/// seeds until all leaf pairs remain routable (gives up after `attempts`).
pub fn omit_links_routable(
    topo: &Topology,
    fraction: f64,
    base_seed: u64,
    attempts: usize,
) -> Option<(Topology, usize)> {
    use rand::SeedableRng;
    for i in 0..attempts {
        let mut rng = rand::rngs::StdRng::seed_from_u64(base_seed.wrapping_add(i as u64));
        let (t, n) = omit_links(topo, fraction, &mut rng);
        if all_leaf_pairs_routable(&t) {
            return Some((t, n));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clos::{three_tier, ClosParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn omission_reduces_links_but_keeps_hosts() {
        let t = three_tier(ClosParams::tiny());
        let mut rng = StdRng::seed_from_u64(7);
        let (t2, removed) = omit_links(&t, 0.2, &mut rng);
        assert!(removed > 0);
        assert_eq!(t2.hosts().len(), t.hosts().len());
        assert_eq!(t2.link_count(), t.link_count() - 2 * removed);
        assert_eq!(t2.host_link_count(), t.host_link_count());
    }

    #[test]
    fn zero_fraction_is_identity_shape() {
        let t = three_tier(ClosParams::tiny());
        let mut rng = StdRng::seed_from_u64(7);
        let (t2, removed) = omit_links(&t, 0.0, &mut rng);
        assert_eq!(removed, 0);
        assert_eq!(t2.link_count(), t.link_count());
    }

    #[test]
    fn degree_guardrails_hold() {
        let t = three_tier(ClosParams::tiny());
        let mut rng = StdRng::seed_from_u64(3);
        // Ask for an extreme fraction; guardrails must clamp it.
        let (t2, _) = omit_links(&t, 0.9, &mut rng);
        for (id, n) in t2.nodes() {
            let ups = t2
                .out_links(id)
                .iter()
                .filter(|l| {
                    let d = t2.link(**l).dst;
                    t2.node(d).role.tier() > n.role.tier()
                })
                .count();
            match n.role {
                NodeRole::Leaf | NodeRole::Agg => {
                    assert!(ups >= 1, "switch {id:?} lost all uplinks")
                }
                _ => {}
            }
        }
    }

    #[test]
    fn routable_helper_finds_valid_degradation() {
        let t = three_tier(ClosParams::tiny());
        let got = omit_links_routable(&t, 0.15, 42, 16);
        assert!(got.is_some());
        let (t2, _) = got.unwrap();
        assert!(all_leaf_pairs_routable(&t2));
    }

    #[test]
    fn irregularity_breaks_path_symmetry() {
        // With links omitted, different leaf pairs see different ECMP
        // fan-outs — the asymmetry Flock(P) exploits in §7.6.
        let t = three_tier(ClosParams::ns3_scale());
        let (t2, _) = omit_links_routable(&t, 0.1, 1, 8).unwrap();
        let router = Router::new(&t2);
        let leaves: Vec<NodeId> = t2
            .switches()
            .iter()
            .copied()
            .filter(|s| t2.node(*s).role == NodeRole::Leaf)
            .collect();
        let mut sizes = std::collections::HashSet::new();
        for i in 0..8usize {
            let a = leaves[i];
            let b = leaves[leaves.len() - 1 - i];
            sizes.insert(router.paths(a, b).len());
        }
        assert!(
            sizes.len() > 1,
            "expected varied ECMP widths, got {sizes:?}"
        );
    }
}
