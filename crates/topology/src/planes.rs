//! Spine-plane membership.
//!
//! In a podded Clos fabric the spine tier is physically *striped* into
//! planes: spine plane `j` serves aggregation position `j` of every pod,
//! so the ECMP path set between two pods decomposes into per-plane
//! slices that share no spine switch or spine-incident link. That
//! structural independence is what lets the online pipeline run one
//! inference engine per plane (`flock-stream`'s
//! `ShardKind::SpinePlane`): evidence against a plane's components can
//! only come from flows whose candidate paths cross that plane.
//!
//! [`SpinePlanes::derive`] recovers the striping from the graph alone —
//! no builder metadata needed — by grouping spines on the set of
//! down-neighbor positions they attach to, and *validates* the grouping
//! (groups must be pairwise disjoint in the positions they serve). On
//! arbitrary graphs where the validation fails, it falls back to a
//! single plane containing every spine, which degrades per-plane
//! sharding to the single-spine-shard plan rather than producing an
//! incorrect partition.

use crate::graph::{LinkId, NodeId, NodeRole, Topology};
use std::collections::BTreeMap;

/// Plane membership of the spine tier. See the module docs.
#[derive(Debug, Clone)]
pub struct SpinePlanes {
    /// Plane index per node (`u16::MAX` for non-spine nodes).
    plane_of: Vec<u16>,
    /// Spines per plane, in plane order.
    members: Vec<Vec<NodeId>>,
    /// Whether the stripe structure validated (`false` = fallback single
    /// plane over all spines).
    striped: bool,
}

impl SpinePlanes {
    /// Derive plane membership from the topology's structure.
    ///
    /// Spines are grouped by the sorted set of `index_in_group` values of
    /// their non-spine switch neighbors (the aggregation positions a
    /// spine serves; leaf positions in a two-tier fabric). The grouping
    /// is valid iff the groups' position sets are pairwise disjoint —
    /// then no switch below the spine tier can reach two planes, which
    /// is exactly the Clos stripe structure. Groups are numbered in
    /// ascending order of their smallest position, so the fat-tree
    /// builder's plane `j` derives as plane `j`.
    ///
    /// Fallback: if any two groups overlap (an un-striped mesh), every
    /// spine lands in one plane 0 and [`SpinePlanes::is_striped`]
    /// reports `false`.
    pub fn derive(topo: &Topology) -> Self {
        let spines: Vec<NodeId> = topo
            .switches()
            .iter()
            .copied()
            .filter(|&s| topo.node(s).role == NodeRole::Spine)
            .collect();
        let mut plane_of = vec![u16::MAX; topo.node_count()];
        if spines.is_empty() {
            return SpinePlanes {
                plane_of,
                members: Vec::new(),
                striped: true,
            };
        }

        // Signature of a spine: the positions it serves one tier down.
        let signature = |s: NodeId| -> Vec<u32> {
            let mut sig: Vec<u32> = topo
                .out_links(s)
                .iter()
                .map(|&l| topo.link(l).dst)
                .filter(|&n| {
                    let nd = topo.node(n);
                    nd.role.is_switch() && nd.role != NodeRole::Spine
                })
                .map(|n| topo.node(n).index_in_group)
                .collect();
            sig.sort_unstable();
            sig.dedup();
            sig
        };

        // Group by signature; BTreeMap orders groups lexicographically,
        // i.e. by smallest served position first (the empty signature —
        // a spine with no fabric links — sorts first and forms its own
        // group, which receives no evidence anyway).
        let mut groups: BTreeMap<Vec<u32>, Vec<NodeId>> = BTreeMap::new();
        for &s in &spines {
            groups.entry(signature(s)).or_default().push(s);
        }

        // Validate: the served-position sets must be pairwise disjoint.
        let mut seen = std::collections::HashSet::new();
        let disjoint = groups.keys().all(|sig| sig.iter().all(|&p| seen.insert(p)));

        let (members, striped) = if disjoint {
            (groups.into_values().collect::<Vec<_>>(), true)
        } else {
            (vec![spines], false)
        };
        for (p, plane) in members.iter().enumerate() {
            for &s in plane {
                plane_of[s.idx()] = p as u16;
            }
        }
        SpinePlanes {
            plane_of,
            members,
            striped,
        }
    }

    /// Number of spine planes (0 when the topology has no spine tier).
    #[inline]
    pub fn n_planes(&self) -> usize {
        self.members.len()
    }

    /// The plane a node belongs to (`None` for non-spine nodes).
    #[inline]
    pub fn plane_of(&self, n: NodeId) -> Option<u16> {
        match self.plane_of.get(n.idx()) {
            Some(&p) if p != u16::MAX => Some(p),
            _ => None,
        }
    }

    /// The spines of one plane.
    #[inline]
    pub fn spines_in(&self, plane: u16) -> &[NodeId] {
        &self.members[plane as usize]
    }

    /// The plane a directed link belongs to: the plane of its spine
    /// endpoint (`None` for links not incident to the spine tier). A
    /// link cannot span two planes — planes share no spine, and links
    /// have at most one spine endpoint in a valley-free fabric — so this
    /// is the link-level plane→component ownership the per-plane shard
    /// plans and evidence views are built from.
    #[inline]
    pub fn plane_of_link(&self, topo: &Topology, l: LinkId) -> Option<u16> {
        let lk = topo.link(l);
        self.plane_of(lk.src).or_else(|| self.plane_of(lk.dst))
    }

    /// All directed links incident to the spines of one plane, sorted
    /// and deduplicated — the component footprint of a plane, used by
    /// plane-confined failure scenarios and state-sparsity accounting.
    pub fn incident_links(&self, topo: &Topology, plane: u16) -> Vec<LinkId> {
        let mut links: Vec<LinkId> = self
            .spines_in(plane)
            .iter()
            .flat_map(|&s| topo.links_of_node(s))
            .collect();
        links.sort_unstable();
        links.dedup();
        links
    }

    /// Whether the derivation validated a genuine stripe structure
    /// (`false` = the fallback single plane over all spines).
    #[inline]
    pub fn is_striped(&self) -> bool {
        self.striped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clos::{leaf_spine, three_tier, ClosParams, LeafSpineParams};
    use crate::graph::TopologyBuilder;

    #[test]
    fn fat_tree_planes_match_builder_stripes() {
        let p = ClosParams {
            pods: 3,
            tors_per_pod: 2,
            aggs_per_pod: 3,
            spines_per_plane: 2,
            hosts_per_tor: 2,
        };
        let topo = three_tier(p);
        let planes = SpinePlanes::derive(&topo);
        assert!(planes.is_striped());
        assert_eq!(planes.n_planes(), p.aggs_per_pod as usize);
        for plane in 0..p.aggs_per_pod as u16 {
            let members = planes.spines_in(plane);
            assert_eq!(members.len(), p.spines_per_plane as usize);
            for &s in members {
                // The builder numbers spine `index_in_group` as
                // `plane * spines_per_plane + s`.
                assert_eq!(
                    topo.node(s).index_in_group / p.spines_per_plane,
                    u32::from(plane)
                );
                assert_eq!(planes.plane_of(s), Some(plane));
            }
        }
        // Non-spine nodes have no plane.
        for (id, n) in topo.nodes() {
            if n.role != NodeRole::Spine {
                assert_eq!(planes.plane_of(id), None);
            }
        }
    }

    #[test]
    fn plane_paths_are_confined() {
        // Every valley-free ECMP path visits spines of exactly one plane
        // — the independence per-plane sharding relies on.
        let topo = three_tier(ClosParams::tiny());
        let planes = SpinePlanes::derive(&topo);
        let router = crate::routing::Router::new(&topo);
        let tors: Vec<NodeId> = topo
            .switches()
            .iter()
            .copied()
            .filter(|&s| topo.node(s).role == NodeRole::Leaf)
            .collect();
        for &a in &tors {
            for &b in &tors {
                for path in router.paths(a, b).iter() {
                    let touched: Vec<u16> = path
                        .links
                        .iter()
                        .flat_map(|&l| [topo.link(l).src, topo.link(l).dst])
                        .filter_map(|n| planes.plane_of(n))
                        .collect();
                    assert!(
                        touched.windows(2).all(|w| w[0] == w[1]),
                        "path touches planes {touched:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn link_planes_match_endpoint_planes() {
        let topo = three_tier(ClosParams::tiny());
        let planes = SpinePlanes::derive(&topo);
        for plane in 0..planes.n_planes() as u16 {
            let incident = planes.incident_links(&topo, plane);
            assert!(!incident.is_empty());
            for &l in &incident {
                assert_eq!(planes.plane_of_link(&topo, l), Some(plane));
            }
        }
        // Links with no spine endpoint have no plane.
        for (i, _) in (0..topo.link_count()).enumerate() {
            let l = LinkId(i as u32);
            let lk = topo.link(l);
            let spine_incident = [lk.src, lk.dst]
                .iter()
                .any(|&n| topo.node(n).role == NodeRole::Spine);
            assert_eq!(planes.plane_of_link(&topo, l).is_some(), spine_incident);
        }
    }

    #[test]
    fn leaf_spine_collapses_to_one_plane() {
        let topo = leaf_spine(LeafSpineParams::testbed());
        let planes = SpinePlanes::derive(&topo);
        assert!(planes.is_striped());
        assert_eq!(planes.n_planes(), 1);
        assert_eq!(planes.spines_in(0).len(), 2);
    }

    #[test]
    fn no_spine_tier_yields_zero_planes() {
        let mut b = TopologyBuilder::new("flat");
        let h = b.add_node(NodeRole::Host, 0, 0);
        let l = b.add_node(NodeRole::Leaf, 0, 0);
        b.connect(h, l);
        let topo = b.build();
        let planes = SpinePlanes::derive(&topo);
        assert_eq!(planes.n_planes(), 0);
        assert!(planes.is_striped());
    }

    #[test]
    fn overlapping_signatures_fall_back_to_one_plane() {
        // Two spines serving overlapping agg positions: not a stripe.
        let mut b = TopologyBuilder::new("mesh");
        let a0 = b.add_node(NodeRole::Agg, 0, 0);
        let a1 = b.add_node(NodeRole::Agg, 0, 1);
        let a2 = b.add_node(NodeRole::Agg, 0, 2);
        let s0 = b.add_node(NodeRole::Spine, u16::MAX, 0);
        let s1 = b.add_node(NodeRole::Spine, u16::MAX, 1);
        b.connect(s0, a0);
        b.connect(s0, a1); // s0 serves {0, 1}
        b.connect(s1, a1); // s1 serves {1, 2} — overlaps s0
        b.connect(s1, a2);
        let topo = b.build();
        let planes = SpinePlanes::derive(&topo);
        assert!(!planes.is_striped());
        assert_eq!(planes.n_planes(), 1);
        assert_eq!(planes.plane_of(s0), Some(0));
        assert_eq!(planes.plane_of(s1), Some(0));
    }

    #[test]
    fn irregular_stripe_subsets_stay_striped() {
        // Dropping links only shrinks a spine's signature within its
        // plane's position, so an irregular fat tree still stripes.
        let topo = three_tier(ClosParams::tiny());
        let (irregular, _removed) = crate::irregular::omit_links(
            &topo,
            0.2,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7),
        );
        let planes = SpinePlanes::derive(&irregular);
        assert!(planes.is_striped());
        assert!(planes.n_planes() >= 1);
    }
}
