//! Deterministic fast hashing for id-keyed index maps.
//!
//! The hot maps in assembly and touch indexing are keyed by small ids
//! (node pairs, path ids, evidence keys), where SipHash's keyed-security
//! costs real epoch-loop time for no benefit: the keys are internal ids,
//! not attacker-controlled strings. [`FxHasher`] is the multiply-mix
//! hasher long used by rustc for exactly this shape of workload —
//! deterministic across runs and platforms of the same endianness, an
//! order of magnitude cheaper per small key than the default hasher.
//!
//! Determinism matters beyond speed: assembly iterates none of these
//! maps in a result-visible order (dedup candidate lists are scanned in
//! insertion order, and observation output is sorted), but a
//! deterministic hasher keeps bucket layouts — and therefore any latent
//! iteration-order dependence — identical between the sequential and
//! pipelined executors, which the bit-identity property suite locks.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Multiply-mix hasher (the rustc "Fx" construction): each 8-byte chunk
/// is xor-folded into the state and multiplied by a large odd constant.
/// Not collision-resistant against adversarial keys — use only for
/// internal id-keyed maps.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

/// The Fx multiplier: a large odd constant with high bit entropy
/// (derived from the golden ratio, as in rustc's implementation).
const K: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        a.write_u32(7);
        b.write_u64(0xdead_beef);
        b.write_u32(7);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i ^ 0x55), u64::from(i) * 3);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, i ^ 0x55)), Some(&(u64::from(i) * 3)));
        }
    }

    #[test]
    fn tail_bytes_distinguish() {
        // The zero-padded tail must still distinguish lengths with equal
        // prefixes (chunked fold covers the remainder).
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(&[1, 2, 3]);
        b.write(&[1, 2, 3, 0]);
        // Identical padded words — lengths are the caller's job (slices
        // hashed via `Hash` include their length as a written usize).
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        use std::hash::Hash;
        [1u8, 2, 3].hash(&mut c);
        let mut d = FxHasher::default();
        [1u8, 2, 3, 0].hash(&mut d);
        assert_ne!(c.finish(), d.finish());
    }
}
