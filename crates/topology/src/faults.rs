//! Shared fault vocabulary: the components a localization scheme can blame
//! and the ground truth an evaluation compares against.

use crate::graph::{LinkId, NodeId};
use serde::{Deserialize, Serialize};

/// A blameable network component: a directed link or a switch device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Component {
    /// A directed link.
    Link(LinkId),
    /// A switch device (§3.2's "device nodes").
    Device(NodeId),
}

/// Ground-truth failure set of a scenario.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Links that actually failed (for device failures: the failed links
    /// of the device, used for partial-recall accounting per App. A.1).
    pub failed_links: Vec<LinkId>,
    /// Devices that actually failed.
    pub failed_devices: Vec<NodeId>,
}

impl GroundTruth {
    /// Whether the scenario has no failures at all.
    pub fn is_empty(&self) -> bool {
        self.failed_links.is_empty() && self.failed_devices.is_empty()
    }

    /// Total number of failed components.
    pub fn len(&self) -> usize {
        self.failed_links.len() + self.failed_devices.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_len() {
        let mut gt = GroundTruth::default();
        assert!(gt.is_empty());
        gt.failed_links.push(LinkId(3));
        assert!(!gt.is_empty());
        assert_eq!(gt.len(), 1);
        gt.failed_devices.push(NodeId(1));
        assert_eq!(gt.len(), 2);
    }

    #[test]
    fn component_ordering_is_total() {
        let mut v = [
            Component::Device(NodeId(5)),
            Component::Link(LinkId(2)),
            Component::Link(LinkId(1)),
        ];
        v.sort();
        assert_eq!(v[0], Component::Link(LinkId(1)));
    }
}
