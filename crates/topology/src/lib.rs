//! Datacenter topology substrate for the Flock fault-localization suite.
//!
//! This crate provides everything the inference layers need to know about
//! the network under diagnosis:
//!
//! * [`Topology`] — a directed multigraph of hosts and switches with typed
//!   tiers (host / leaf / aggregation / spine), built by the constructors in
//!   [`clos`] (three-tier Clos / fat-tree and two-tier leaf–spine, matching
//!   the environments of §6.3 of the paper).
//! * [`irregular`] — derivation of "irregular" topologies by omitting a
//!   fraction of fabric links (§7.6), preserving host reachability.
//! * [`planes`] — spine-plane membership recovered from the stripe
//!   structure of the graph (with a validated single-plane fallback),
//!   the partition behind per-plane spine sharding in `flock-stream`.
//! * [`routing`] — valley-free (up–down) ECMP shortest-path enumeration
//!   with per-pair caching, producing the path sets that define the PGM's
//!   path layer (§3.2).
//! * [`equivalence`] — link equivalence classes under passive observation
//!   and the theoretical maximum precision used in Fig. 5c.
//! * [`fasthash`] — the deterministic multiply-mix hasher behind every
//!   id-keyed index map on the epoch hot path (assembly caches, touch
//!   indexes, term tables).
//!
//! The graph structures are intentionally small and purpose-built (no
//! general graph library): the only operations the suite needs are tiered
//! construction, up-down traversal, and link/neighbor lookups, and keeping
//! the representation flat (`Vec`-indexed arenas) makes the large-scale
//! experiments (tens of thousands of links) cheap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clos;
pub mod equivalence;
pub mod fasthash;
pub mod faults;
pub mod graph;
pub mod irregular;
pub mod planes;
pub mod routing;

pub use clos::{ClosParams, LeafSpineParams};
pub use equivalence::{EquivalenceClasses, LinkSignature};
pub use fasthash::{FxHashMap, FxHashSet};
pub use faults::{Component, GroundTruth};
pub use graph::{Link, LinkId, Node, NodeId, NodeRole, Topology};
pub use planes::SpinePlanes;
pub use routing::{FabricPath, PathSetHandle, Router};
