//! Builders for the two fabric shapes used throughout the paper's
//! evaluation: a three-tier Clos (the NS3 / large-scale simulation
//! environment, §6.3) and a two-tier leaf–spine (the hardware testbed:
//! 2 spines, 8 leaf racks, 6 hosts per rack).
//!
//! The three-tier builder is a generalized podded Clos rather than a strict
//! k-ary fat tree so that experiment sweeps can dial the number of servers,
//! links and the oversubscription ratio independently (the paper's 2500-link
//! topology has 3× oversubscription at the ToRs).

use crate::graph::{NodeId, NodeRole, Topology, TopologyBuilder};
use serde::{Deserialize, Serialize};

/// Parameters of a three-tier podded Clos fabric.
///
/// Structure: `pods` pods, each with `tors_per_pod` leaf (ToR) switches and
/// `aggs_per_pod` aggregation switches, fully bipartitely connected inside
/// the pod. Aggregation switch `j` of every pod connects to the spine plane
/// `j`, which contains `spines_per_plane` spine switches (so the total spine
/// count is `aggs_per_pod × spines_per_plane`). Each ToR hosts
/// `hosts_per_tor` servers.
///
/// ECMP path counts: two hosts under different pods have
/// `aggs_per_pod × spines_per_plane` fabric paths; under the same pod but
/// different ToRs, `aggs_per_pod` paths; under the same ToR, one path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClosParams {
    /// Number of pods.
    pub pods: u32,
    /// ToR (leaf) switches per pod.
    pub tors_per_pod: u32,
    /// Aggregation switches per pod.
    pub aggs_per_pod: u32,
    /// Spine switches per spine plane (one plane per agg position).
    pub spines_per_plane: u32,
    /// Servers per ToR.
    pub hosts_per_tor: u32,
}

impl ClosParams {
    /// A small topology for unit tests: 2 pods × (2 ToR + 2 agg), 2 spine
    /// planes of 2, 3 hosts per ToR → 12 hosts, 10 switches.
    pub fn tiny() -> Self {
        ClosParams {
            pods: 2,
            tors_per_pod: 2,
            aggs_per_pod: 2,
            spines_per_plane: 2,
            hosts_per_tor: 3,
        }
    }

    /// A medium Clos approximating the paper's NS3 environment: ~2500
    /// directed links with 3× oversubscription at the ToRs
    /// (12 host links vs 4 uplinks per ToR).
    pub fn ns3_scale() -> Self {
        // Fabric cables: pods*tors*aggs (tor-agg) + aggs*spines_total (agg-spine)
        //   = 8*8*4 + 4*8*... see `three_tier` tests for the exact count.
        ClosParams {
            pods: 8,
            tors_per_pod: 8,
            aggs_per_pod: 4,
            spines_per_plane: 8,
            hosts_per_tor: 12,
        }
    }

    /// Scale the fabric to approximately `servers` servers while keeping
    /// the tiny/ns3 aspect ratios (used by the Fig. 4c/4d scaling sweeps).
    pub fn with_servers(servers: u32) -> Self {
        // Grow pods and tors_per_pod together; keep hosts_per_tor = 16.
        let hosts_per_tor = 16;
        let tors_needed = servers.div_ceil(hosts_per_tor);
        // pods ≈ tors_per_pod ≈ sqrt(tors)
        let side = (tors_needed as f64).sqrt().ceil() as u32;
        ClosParams {
            pods: side.max(2),
            tors_per_pod: side.max(2),
            aggs_per_pod: (side / 2).clamp(2, 16),
            spines_per_plane: (side / 2).clamp(2, 16),
            hosts_per_tor,
        }
    }

    /// Total number of servers.
    pub fn total_hosts(&self) -> u32 {
        self.pods * self.tors_per_pod * self.hosts_per_tor
    }

    /// Total number of directed links (fabric + host attachment).
    pub fn total_links(&self) -> u32 {
        let tor_agg = self.pods * self.tors_per_pod * self.aggs_per_pod;
        let agg_spine = self.pods * self.aggs_per_pod * self.spines_per_plane;
        let host = self.total_hosts();
        2 * (tor_agg + agg_spine + host)
    }

    /// ToR oversubscription ratio (host-side bandwidth / fabric-side
    /// bandwidth, assuming uniform link speeds).
    pub fn oversubscription(&self) -> f64 {
        self.hosts_per_tor as f64 / self.aggs_per_pod as f64
    }
}

/// Build a three-tier podded Clos fabric.
pub fn three_tier(p: ClosParams) -> Topology {
    assert!(p.pods >= 1 && p.tors_per_pod >= 1 && p.aggs_per_pod >= 1);
    assert!(p.spines_per_plane >= 1 && p.hosts_per_tor >= 1);
    let mut b = TopologyBuilder::new(format!(
        "clos-p{}-t{}-a{}-s{}-h{}",
        p.pods, p.tors_per_pod, p.aggs_per_pod, p.spines_per_plane, p.hosts_per_tor
    ));

    // Spine planes: plane j serves agg position j of every pod.
    let mut spines: Vec<Vec<NodeId>> = Vec::with_capacity(p.aggs_per_pod as usize);
    for plane in 0..p.aggs_per_pod {
        let mut row = Vec::with_capacity(p.spines_per_plane as usize);
        for s in 0..p.spines_per_plane {
            row.push(b.add_node(NodeRole::Spine, u16::MAX, plane * p.spines_per_plane + s));
        }
        spines.push(row);
    }

    for pod in 0..p.pods {
        let mut aggs = Vec::with_capacity(p.aggs_per_pod as usize);
        for a in 0..p.aggs_per_pod {
            let agg = b.add_node(NodeRole::Agg, pod as u16, a);
            for spine in &spines[a as usize] {
                b.connect(agg, *spine);
            }
            aggs.push(agg);
        }
        for t in 0..p.tors_per_pod {
            let tor = b.add_node(NodeRole::Leaf, pod as u16, t);
            for agg in &aggs {
                b.connect(tor, *agg);
            }
            for h in 0..p.hosts_per_tor {
                let host = b.add_node(NodeRole::Host, pod as u16, t * p.hosts_per_tor + h);
                b.connect(host, tor);
            }
        }
    }
    b.build()
}

/// Parameters of a two-tier leaf–spine fabric (the paper's hardware
/// testbed: `LeafSpineParams::testbed()`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeafSpineParams {
    /// Number of spine switches (every leaf connects to every spine).
    pub spines: u32,
    /// Number of leaf (rack) switches.
    pub leaves: u32,
    /// Servers per leaf.
    pub hosts_per_leaf: u32,
}

impl LeafSpineParams {
    /// The paper's hardware testbed: 2 spines, 8 leaf racks, 6 hosts/rack.
    pub fn testbed() -> Self {
        LeafSpineParams {
            spines: 2,
            leaves: 8,
            hosts_per_leaf: 6,
        }
    }

    /// Total number of servers.
    pub fn total_hosts(&self) -> u32 {
        self.leaves * self.hosts_per_leaf
    }
}

/// Build a two-tier leaf–spine fabric.
pub fn leaf_spine(p: LeafSpineParams) -> Topology {
    assert!(p.spines >= 1 && p.leaves >= 1 && p.hosts_per_leaf >= 1);
    let mut b = TopologyBuilder::new(format!(
        "leafspine-s{}-l{}-h{}",
        p.spines, p.leaves, p.hosts_per_leaf
    ));
    let spines: Vec<NodeId> = (0..p.spines)
        .map(|s| b.add_node(NodeRole::Spine, u16::MAX, s))
        .collect();
    for l in 0..p.leaves {
        let leaf = b.add_node(NodeRole::Leaf, l as u16, 0);
        for spine in &spines {
            b.connect(leaf, *spine);
        }
        for h in 0..p.hosts_per_leaf {
            let host = b.add_node(NodeRole::Host, l as u16, h);
            b.connect(host, leaf);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeRole;

    #[test]
    fn tiny_clos_counts() {
        let p = ClosParams::tiny();
        let t = three_tier(p);
        assert_eq!(t.hosts().len(), p.total_hosts() as usize);
        assert_eq!(t.link_count(), p.total_links() as usize);
        // switches: 2 pods * (2 tor + 2 agg) + 2 planes * 2 spines = 12
        assert_eq!(t.switch_count(), 12);
    }

    #[test]
    fn ns3_scale_is_about_2500_links() {
        let p = ClosParams::ns3_scale();
        let t = three_tier(p);
        // The paper's NS3 topology has 2500 links; ours is the same order.
        assert!(
            (2000..3500).contains(&t.link_count()),
            "got {} links",
            t.link_count()
        );
        assert!((p.oversubscription() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn tor_degree_matches_params() {
        let p = ClosParams::tiny();
        let t = three_tier(p);
        for (id, n) in t.nodes() {
            match n.role {
                NodeRole::Leaf => assert_eq!(
                    t.out_links(id).len(),
                    (p.aggs_per_pod + p.hosts_per_tor) as usize
                ),
                NodeRole::Agg => assert_eq!(
                    t.out_links(id).len(),
                    (p.spines_per_plane + p.tors_per_pod) as usize
                ),
                NodeRole::Spine => assert_eq!(t.out_links(id).len(), p.pods as usize),
                NodeRole::Host => assert_eq!(t.out_links(id).len(), 1),
            }
        }
    }

    #[test]
    fn testbed_leaf_spine_counts() {
        let p = LeafSpineParams::testbed();
        let t = leaf_spine(p);
        assert_eq!(t.hosts().len(), 48);
        assert_eq!(t.switch_count(), 10);
        // cables: 8 leaves * 2 spines + 48 hosts = 64 → 128 directed links
        assert_eq!(t.link_count(), 128);
    }

    #[test]
    fn with_servers_reaches_target() {
        for servers in [512u32, 4096, 8192] {
            let p = ClosParams::with_servers(servers);
            assert!(
                p.total_hosts() >= servers,
                "{} < {}",
                p.total_hosts(),
                servers
            );
        }
    }

    #[test]
    fn all_hosts_have_single_uplink() {
        let t = three_tier(ClosParams::tiny());
        for h in t.hosts() {
            assert_eq!(t.out_links(*h).len(), 1);
            let leaf = t.host_leaf(*h);
            assert_eq!(t.node(leaf).role, NodeRole::Leaf);
        }
    }
}
