//! Core graph types: nodes (hosts and switches), directed links, and the
//! [`Topology`] container.
//!
//! Links are *directed*: a physical cable is represented by two links, one
//! per direction, paired via [`Link::reverse`]. Fault localization treats
//! the two directions as independent components (a transceiver can corrupt
//! traffic in one direction only), which matches how 007 and NetBouncer
//! model links.

use serde::{Deserialize, Serialize};

/// Identifier of a node (host or switch) in a [`Topology`].
///
/// Node ids are dense indices into the topology's node arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of a *directed* link in a [`Topology`].
///
/// Link ids are dense indices into the topology's link arena. The two
/// directions of a cable have distinct ids, connected via [`Link::reverse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl NodeId {
    /// The node id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// The link id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// The role (tier) of a node in a datacenter fabric.
///
/// Tiers are ordered: `Host < Leaf < Agg < Spine`. Up-down (valley-free)
/// routing only ever moves to strictly higher tiers before moving to
/// strictly lower tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeRole {
    /// An end host (server). Hosts are traffic endpoints, not failure
    /// candidates; their attachment links are.
    Host,
    /// Top-of-rack switch (also called ToR or leaf).
    Leaf,
    /// Pod-level aggregation switch (three-tier Clos only).
    Agg,
    /// Spine / core switch.
    Spine,
}

impl NodeRole {
    /// Numeric tier used for valley-free routing (`Host` = 0 … `Spine` = 3).
    #[inline]
    pub fn tier(self) -> u8 {
        match self {
            NodeRole::Host => 0,
            NodeRole::Leaf => 1,
            NodeRole::Agg => 2,
            NodeRole::Spine => 3,
        }
    }

    /// Whether this node is a switch (a device component in the PGM).
    #[inline]
    pub fn is_switch(self) -> bool {
        !matches!(self, NodeRole::Host)
    }
}

/// A node in the topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// Tier of the node.
    pub role: NodeRole,
    /// Pod index for leaves/aggs in a podded Clos; `u16::MAX` when not
    /// applicable (hosts inherit their leaf's pod; spines are pod-less).
    pub pod: u16,
    /// Index of the node within its (role, pod) group; used by builders to
    /// wire the fabric deterministically and by tests to assert structure.
    pub index_in_group: u32,
}

/// A directed link between two nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Link {
    /// Transmitting node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// The link carrying traffic in the opposite direction over the same
    /// physical cable.
    pub reverse: LinkId,
}

/// A directed multigraph describing a datacenter network.
///
/// Construct via the builders in [`crate::clos`] (or [`TopologyBuilder`]
/// for custom shapes), derive irregular variants via [`crate::irregular`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    /// Human-readable name, e.g. `"clos-p8-a4-t4-h8"`.
    pub name: String,
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// Outgoing links per node.
    out: Vec<Vec<LinkId>>,
    /// All host node ids, in construction order.
    hosts: Vec<NodeId>,
    /// All switch node ids (leaf, agg, spine), in construction order.
    switches: Vec<NodeId>,
}

impl Topology {
    /// Number of nodes (hosts + switches).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed links.
    #[inline]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of switches (PGM device candidates).
    #[inline]
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// The node record for `id`.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.idx()]
    }

    /// The link record for `id`.
    #[inline]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.idx()]
    }

    /// Outgoing links of `node`.
    #[inline]
    pub fn out_links(&self, node: NodeId) -> &[LinkId] {
        &self.out[node.idx()]
    }

    /// All hosts.
    #[inline]
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }

    /// All switches.
    #[inline]
    pub fn switches(&self) -> &[NodeId] {
        &self.switches
    }

    /// Iterate over `(LinkId, &Link)` pairs.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| (LinkId(i as u32), l))
    }

    /// Iterate over `(NodeId, &Node)` pairs.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// The leaf (ToR) switch a host attaches to.
    ///
    /// # Panics
    /// Panics if `host` is not a host or is disconnected.
    pub fn host_leaf(&self, host: NodeId) -> NodeId {
        debug_assert_eq!(self.node(host).role, NodeRole::Host);
        let up = self.out[host.idx()]
            .first()
            .expect("host must have an uplink");
        self.link(*up).dst
    }

    /// The host→leaf link of `host`.
    pub fn host_uplink(&self, host: NodeId) -> LinkId {
        debug_assert_eq!(self.node(host).role, NodeRole::Host);
        self.out[host.idx()][0]
    }

    /// The leaf→host link of `host`.
    pub fn host_downlink(&self, host: NodeId) -> LinkId {
        self.link(self.host_uplink(host)).reverse
    }

    /// Links whose source *or* destination is `node` (i.e. both directions
    /// of every attached cable). Used when failing a device's links.
    pub fn links_of_node(&self, node: NodeId) -> Vec<LinkId> {
        let mut ids: Vec<LinkId> = self.out[node.idx()].clone();
        ids.extend(self.out[node.idx()].iter().map(|l| self.link(*l).reverse));
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Fabric links: links whose both endpoints are switches (excludes
    /// host attachment links). These are the usual failure candidates in
    /// the paper's link-failure scenarios.
    pub fn fabric_links(&self) -> Vec<LinkId> {
        self.links()
            .filter(|(_, l)| self.node(l.src).role.is_switch() && self.node(l.dst).role.is_switch())
            .map(|(id, _)| id)
            .collect()
    }

    /// Total number of directed host-attachment links.
    pub fn host_link_count(&self) -> usize {
        self.link_count() - self.fabric_links().len()
    }
}

/// Incremental builder for [`Topology`]: add nodes, connect cables, finish.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    name: String,
    nodes: Vec<Node>,
    links: Vec<Link>,
    out: Vec<Vec<LinkId>>,
}

impl TopologyBuilder {
    /// Start building a topology called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        TopologyBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Add a node and return its id.
    pub fn add_node(&mut self, role: NodeRole, pod: u16, index_in_group: u32) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            role,
            pod,
            index_in_group,
        });
        self.out.push(Vec::new());
        id
    }

    /// Connect `a` and `b` with a cable (two directed links); returns the
    /// `(a→b, b→a)` link ids.
    pub fn connect(&mut self, a: NodeId, b: NodeId) -> (LinkId, LinkId) {
        let ab = LinkId(self.links.len() as u32);
        let ba = LinkId(self.links.len() as u32 + 1);
        self.links.push(Link {
            src: a,
            dst: b,
            reverse: ba,
        });
        self.links.push(Link {
            src: b,
            dst: a,
            reverse: ab,
        });
        self.out[a.idx()].push(ab);
        self.out[b.idx()].push(ba);
        (ab, ba)
    }

    /// Finish construction.
    pub fn build(self) -> Topology {
        let mut hosts = Vec::new();
        let mut switches = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            if n.role.is_switch() {
                switches.push(id);
            } else {
                hosts.push(id);
            }
        }
        Topology {
            name: self.name,
            nodes: self.nodes,
            links: self.links,
            out: self.out,
            hosts,
            switches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Topology {
        let mut b = TopologyBuilder::new("tiny");
        let h0 = b.add_node(NodeRole::Host, 0, 0);
        let h1 = b.add_node(NodeRole::Host, 0, 1);
        let s = b.add_node(NodeRole::Leaf, 0, 0);
        b.connect(h0, s);
        b.connect(h1, s);
        b.build()
    }

    #[test]
    fn builder_pairs_reverse_links() {
        let t = tiny();
        for (id, l) in t.links() {
            assert_eq!(t.link(l.reverse).reverse, id, "reverse must be involutive");
            assert_eq!(t.link(l.reverse).src, l.dst);
            assert_eq!(t.link(l.reverse).dst, l.src);
        }
    }

    #[test]
    fn host_accessors() {
        let t = tiny();
        let h0 = t.hosts()[0];
        assert_eq!(t.host_leaf(h0), NodeId(2));
        let up = t.host_uplink(h0);
        let down = t.host_downlink(h0);
        assert_eq!(t.link(up).src, h0);
        assert_eq!(t.link(down).dst, h0);
        assert_eq!(t.link(up).reverse, down);
    }

    #[test]
    fn counts() {
        let t = tiny();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 4);
        assert_eq!(t.switch_count(), 1);
        assert_eq!(t.hosts().len(), 2);
        assert!(t.fabric_links().is_empty());
        assert_eq!(t.host_link_count(), 4);
    }

    #[test]
    fn links_of_node_covers_both_directions() {
        let t = tiny();
        let s = t.switches()[0];
        let ids = t.links_of_node(s);
        assert_eq!(ids.len(), 4, "leaf touches both directions of 2 cables");
    }

    #[test]
    fn role_tiers_are_ordered() {
        assert!(NodeRole::Host.tier() < NodeRole::Leaf.tier());
        assert!(NodeRole::Leaf.tier() < NodeRole::Agg.tier());
        assert!(NodeRole::Agg.tier() < NodeRole::Spine.tier());
        assert!(!NodeRole::Host.is_switch());
        assert!(NodeRole::Leaf.is_switch());
    }
}
