//! Link equivalence classes under passive observation, and the
//! "theoretical maximum precision" curve of Fig. 5c.
//!
//! With passive-only telemetry a flow's path is known only as its ECMP
//! path *set*. The per-flow likelihood (Eq. 1) depends on the hypothesis
//! only through the *number* of failed paths in the set — not on which
//! member failed. Consequently two links `l1, l2` are observationally
//! indistinguishable for single-failure hypotheses whenever, for every
//! path set `S` the telemetry can produce, `l1` and `l2` appear in the
//! same number of member paths of `S`. In a symmetric Clos all parallel
//! uplinks of a ToR share this signature (they appear in exactly the same
//! path sets the same number of times), which is why Flock(P)'s precision
//! is bounded away from 1 there; omitting links breaks the symmetry and
//! shrinks the classes (§7.6).
//!
//! [`EquivalenceClasses::compute`] builds the signature map for a given
//! collection of path sets, and [`EquivalenceClasses::max_precision`]
//! computes the expected best-case precision `E_l[1/|class(l)|]` over the
//! candidate links: an ideal passive localizer can at best emit the whole
//! class containing the true failed link.

use crate::graph::LinkId;
use crate::routing::FabricPath;
use std::collections::HashMap;

/// Signature of a link: for every observed path set (identified by index),
/// how many member paths contain the link. Only non-zero entries are kept,
/// sorted by path-set index, so equal vectors mean equal signatures.
pub type LinkSignature = Vec<(u32, u32)>;

/// Partition of links into observational equivalence classes.
#[derive(Debug, Clone)]
pub struct EquivalenceClasses {
    /// Class id per link (dense, `usize::MAX` for links that appear in no
    /// observed path set — those are unlocalizable by passive telemetry).
    class_of: Vec<usize>,
    /// Members of each class.
    classes: Vec<Vec<LinkId>>,
}

impl EquivalenceClasses {
    /// Compute equivalence classes from a collection of path sets.
    ///
    /// `link_count` is the total number of links in the topology;
    /// `path_sets` yields, per observable flow population, the member
    /// paths of its ECMP path set.
    pub fn compute<'a, I, J>(link_count: usize, path_sets: I) -> Self
    where
        I: IntoIterator<Item = J>,
        J: IntoIterator<Item = &'a FabricPath>,
    {
        let mut sigs: Vec<LinkSignature> = vec![Vec::new(); link_count];
        for (set_idx, set) in path_sets.into_iter().enumerate() {
            let mut counts: HashMap<LinkId, u32> = HashMap::new();
            for path in set {
                for l in &path.links {
                    *counts.entry(*l).or_insert(0) += 1;
                }
            }
            for (l, c) in counts {
                sigs[l.idx()].push((set_idx as u32, c));
            }
        }
        // Signatures were appended in increasing set index order already,
        // so they are canonical as-is.
        let mut class_ids: HashMap<&LinkSignature, usize> = HashMap::new();
        let mut classes: Vec<Vec<LinkId>> = Vec::new();
        let mut class_of = vec![usize::MAX; link_count];
        for (idx, sig) in sigs.iter().enumerate() {
            if sig.is_empty() {
                continue;
            }
            let next = classes.len();
            let cid = *class_ids.entry(sig).or_insert(next);
            if cid == classes.len() {
                classes.push(Vec::new());
            }
            classes[cid].push(LinkId(idx as u32));
            class_of[idx] = cid;
        }
        EquivalenceClasses { class_of, classes }
    }

    /// The class containing `link`, if the link is observable.
    pub fn class_of(&self, link: LinkId) -> Option<&[LinkId]> {
        match self.class_of.get(link.idx()) {
            Some(&cid) if cid != usize::MAX => Some(&self.classes[cid]),
            _ => None,
        }
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// All classes.
    pub fn classes(&self) -> &[Vec<LinkId>] {
        &self.classes
    }

    /// Expected best-case precision over `candidates`: the mean of
    /// `1/|class(l)|`, treating unobservable links as precision 0.
    ///
    /// This is the "theoretical max precision" series of Fig. 5c: an ideal
    /// passive localizer must emit the whole equivalence class of the true
    /// failed link, so its precision on that trace is `1/|class|`.
    pub fn max_precision(&self, candidates: &[LinkId]) -> f64 {
        if candidates.is_empty() {
            return 0.0;
        }
        let sum: f64 = candidates
            .iter()
            .map(|l| match self.class_of(*l) {
                Some(c) => 1.0 / c.len() as f64,
                None => 0.0,
            })
            .sum();
        sum / candidates.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clos::{three_tier, ClosParams};
    use crate::graph::{NodeId, NodeRole};
    use crate::irregular::omit_links_routable;
    use crate::routing::Router;

    fn leaf_pairs_pathsets(topo: &crate::graph::Topology) -> (Vec<Vec<FabricPath>>, Vec<LinkId>) {
        let router = Router::new(topo);
        let leaves: Vec<NodeId> = topo
            .switches()
            .iter()
            .copied()
            .filter(|s| topo.node(*s).role == NodeRole::Leaf)
            .collect();
        let mut sets = Vec::new();
        for a in &leaves {
            for b in &leaves {
                if a != b {
                    sets.push(router.paths(*a, *b).to_vec());
                }
            }
        }
        (sets, topo.fabric_links())
    }

    #[test]
    fn symmetric_clos_has_nontrivial_classes() {
        let topo = three_tier(ClosParams::tiny());
        let (sets, fabric) = leaf_pairs_pathsets(&topo);
        let eq = EquivalenceClasses::compute(topo.link_count(), sets.iter().map(|s| s.iter()));
        // In the tiny Clos, the two tor→agg uplinks of a ToR are symmetric
        // (each appears once per path set containing the ToR), so some
        // class must have >1 member.
        let max_class = eq.classes().iter().map(|c| c.len()).max().unwrap();
        assert!(
            max_class > 1,
            "expected symmetric links, classes all singleton"
        );
        let p = eq.max_precision(&fabric);
        assert!(
            p > 0.0 && p < 1.0,
            "precision {p} should be strictly inside (0,1)"
        );
    }

    #[test]
    fn irregularity_improves_max_precision() {
        let topo = three_tier(ClosParams::ns3_scale());
        let (sets, fabric) = leaf_pairs_pathsets(&topo);
        let eq = EquivalenceClasses::compute(topo.link_count(), sets.iter().map(|s| s.iter()));
        let p_regular = eq.max_precision(&fabric);

        let (irr, _) = omit_links_routable(&topo, 0.10, 11, 8).unwrap();
        let (sets2, fabric2) = leaf_pairs_pathsets(&irr);
        let eq2 = EquivalenceClasses::compute(irr.link_count(), sets2.iter().map(|s| s.iter()));
        let p_irregular = eq2.max_precision(&fabric2);
        assert!(
            p_irregular > p_regular,
            "irregular {p_irregular} should beat regular {p_regular}"
        );
    }

    #[test]
    fn unobserved_links_have_no_class() {
        let topo = three_tier(ClosParams::tiny());
        // No path sets at all: everything unobservable.
        let eq = EquivalenceClasses::compute(topo.link_count(), Vec::<Vec<&FabricPath>>::new());
        assert_eq!(eq.class_count(), 0);
        assert!(eq.class_of(LinkId(0)).is_none());
        assert_eq!(eq.max_precision(&topo.fabric_links()), 0.0);
    }

    #[test]
    fn classes_partition_observed_links() {
        let topo = three_tier(ClosParams::tiny());
        let (sets, _) = leaf_pairs_pathsets(&topo);
        let eq = EquivalenceClasses::compute(topo.link_count(), sets.iter().map(|s| s.iter()));
        let mut seen = std::collections::HashSet::new();
        for class in eq.classes() {
            for l in class {
                assert!(seen.insert(*l), "link {l:?} in two classes");
                assert_eq!(eq.class_of(*l).unwrap(), class.as_slice());
            }
        }
    }
}
