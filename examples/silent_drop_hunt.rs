//! Scheme shoot-out on the paper's core scenario (§7.1): multiple
//! concurrent silent-drop failures, compared across Flock, NetBouncer and
//! 007 on the telemetry each can consume.
//!
//! ```text
//! cargo run --release --example silent_drop_hunt [n_failures]
//! ```

use flock::prelude::*;
use flock::telemetry::plan_a1_probes;
use rand::SeedableRng;

fn main() {
    let n_failures: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    let topo = flock::topology::clos::three_tier(ClosParams::ns3_scale());
    let router = Router::new(&topo);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2023);
    let scenario =
        flock::netsim::failure::silent_link_drops(&topo, n_failures, (0.001, 0.01), 1e-4, &mut rng);
    println!(
        "{} failed links among {} (drop rates 0.1-1%), SNR {:.0}",
        scenario.truth.failed_links.len(),
        topo.link_count(),
        scenario.snr()
    );

    // Passive traffic (skewed, as in half the paper's traces) + A1 probes.
    let demands = flock::netsim::traffic::generate_demands(
        &topo,
        &TrafficConfig::paper(60_000, TrafficPattern::paper_skewed()),
        &mut rng,
    );
    let cfg = FlowSimConfig::default();
    let mut flows =
        flock::netsim::flowsim::simulate_flows(&topo, &router, &scenario, &demands, &cfg, &mut rng);
    let probes = plan_a1_probes(&topo, &router, 50, Some(8192));
    flows.extend(flock::netsim::flowsim::run_probes(
        &scenario, &probes, &cfg, &mut rng,
    ));

    // Parameters as selected by the calibration harness (§5.2; run
    // `flock-exp fig2a` to regenerate them).
    let flock_params = HyperParams {
        p_g: 5e-4,
        p_b: 6e-3,
        rho_link: (-15.0f64).exp(),
        ..Default::default()
    };
    let cells: Vec<(&str, Vec<InputKind>, Box<dyn Localizer>)> = vec![
        (
            "Flock (INT)",
            vec![InputKind::Int],
            Box::new(FlockGreedy::new(flock_params)),
        ),
        (
            "Flock (A1+A2+P)",
            vec![InputKind::A1, InputKind::A2, InputKind::P],
            Box::new(FlockGreedy::new(flock_params)),
        ),
        (
            "Flock (A2)",
            vec![InputKind::A2],
            Box::new(FlockGreedy::new(flock_params)),
        ),
        (
            "Flock (A1)",
            vec![InputKind::A1],
            Box::new(FlockGreedy::new(flock_params)),
        ),
        (
            "NetBouncer (INT)",
            vec![InputKind::Int],
            Box::new(NetBouncer::new(5.0, 5e-3)),
        ),
        (
            "NetBouncer (A1)",
            vec![InputKind::A1],
            Box::new(NetBouncer::new(5.0, 5e-3)),
        ),
        (
            "007 (A2)",
            vec![InputKind::A2],
            Box::new(ZeroZeroSeven::new(2.0)),
        ),
    ];

    println!(
        "\n{:<18} {:>9} {:>7} {:>7} {:>10} {:>9}",
        "scheme", "precision", "recall", "fscore", "runtime", "blamed"
    );
    for (label, kinds, localizer) in cells {
        let obs = flock::telemetry::input::assemble(
            &topo,
            &router,
            &flows,
            &kinds,
            AnalysisMode::PerPacket,
        );
        let result = localizer.localize(&topo, &obs);
        let pr = evaluate(&topo, &result.predicted, &scenario.truth);
        println!(
            "{:<18} {:>9.3} {:>7.3} {:>7.3} {:>10.1?} {:>9}",
            label,
            pr.precision,
            pr.recall,
            fscore(pr.precision, pr.recall),
            result.runtime,
            result.predicted.len(),
        );
    }
}
