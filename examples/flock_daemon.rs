//! `flock-daemon` — the continuously-running localization service of
//! §5.1, end to end: per-host agents export 52-byte IPFIX-style records
//! (wire v2, epoch-stamped) over real TCP sockets to the sharded
//! reactor collector; the stream layer takes the pre-bucketed drain
//! into epochs and localizes each one with warm-started, pod-sharded
//! inference, emitting a `LocalizationResult` time-series while a fault
//! appears, persists, and heals.
//!
//! ```text
//! cargo run --release --example flock_daemon
//! ```

use flock::prelude::*;
use flock::telemetry::agent::{AgentConfig, AgentCore, Exporter, FlowSample};
use rand::SeedableRng;
use std::collections::HashMap;

const EPOCHS: u64 = 6;
const EPOCH_MS: u64 = 1_000;
const FLOWS_PER_EPOCH: usize = 3_000;

fn main() {
    let topo = flock::topology::clos::three_tier(ClosParams {
        pods: 3,
        tors_per_pod: 2,
        aggs_per_pod: 2,
        spines_per_plane: 2,
        hosts_per_tor: 3,
    });
    let router = Router::new(&topo);
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);

    // A fault timeline: one gray link failure appearing at epoch 1 and
    // healing at epoch 4.
    let mut scenario = DynamicScenario::noise_only(&topo, 1e-4, &mut rng);
    let faulty = topo.fabric_links()[9];
    scenario.events.push(FaultEvent {
        link: faulty,
        drop_rate: 0.02,
        appear_epoch: 1,
        heal_epoch: Some(4),
    });
    println!(
        "daemon: watching {} ({} links, {} switches); fault on {faulty:?} over epochs [1, 4)",
        topo.name,
        topo.link_count(),
        topo.switch_count()
    );

    let collector = Collector::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    println!(
        "collector listening on {} ({} reactor shards)",
        collector.local_addr(),
        collector.reactor_shards()
    );

    let mut pipeline = StreamPipeline::new(
        &topo,
        StreamConfig {
            epoch: EpochConfig::tumbling(EPOCH_MS),
            kinds: vec![InputKind::A2, InputKind::P],
            mode: AnalysisMode::PerPacket,
            warm_start: true,
            shard_by_pod: true,
            ..StreamConfig::paper_default()
        },
    );
    println!(
        "stream: {} shards ({}), warm start on\n",
        pipeline.plan().len(),
        pipeline
            .plan()
            .shards
            .iter()
            .map(|s| s.label.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );

    let mut reports: Vec<EpochReport> = Vec::new();
    for epoch in 0..EPOCHS {
        // ---- The network under its current condition. ----
        let snapshot = scenario.scenario_at(epoch);
        let demands = flock::netsim::traffic::generate_demands(
            &topo,
            &TrafficConfig::paper(FLOWS_PER_EPOCH, TrafficPattern::Uniform),
            &mut rng,
        );
        let flows = flock::netsim::flowsim::simulate_flows(
            &topo,
            &router,
            &snapshot,
            &demands,
            &FlowSimConfig::default(),
            &mut rng,
        );

        // ---- Per-host agents export over real sockets. ----
        let mut per_host: HashMap<NodeId, Vec<&MonitoredFlow>> = HashMap::new();
        for f in &flows {
            per_host.entry(f.key.src).or_default().push(f);
        }
        let export_ms = epoch * EPOCH_MS + EPOCH_MS / 2;
        for (host, host_flows) in &per_host {
            // Wire v2: exports are stamped with the collector-agreed
            // epoch so records arrive pre-bucketed.
            let mut agent = AgentCore::new(AgentConfig {
                agent_id: host.0,
                epoch_hint_ms: Some(EPOCH_MS),
                ..Default::default()
            });
            for f in host_flows {
                agent.observe(FlowSample {
                    key: f.key,
                    packets: f.stats.packets,
                    retransmissions: f.stats.retransmissions,
                    bytes: f.stats.bytes,
                    rtt_us: Some(f.stats.rtt_max_us),
                    // A2-style: flagged flows get their path traced.
                    path: (f.stats.retransmissions > 0).then(|| f.true_path.clone()),
                    class: flock::telemetry::TrafficClass::Passive,
                });
            }
            let records = agent.export();
            let msgs = agent.encode_export(export_ms, &records);
            let mut exporter = Exporter::connect(collector.local_addr()).unwrap();
            for m in &msgs {
                exporter.send(m).unwrap();
            }
            exporter.finish().unwrap();
        }

        // ---- Drain, window, localize. ----
        let expected = flows.len();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while collector.pending() < expected && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(collector.pending(), expected, "collector lost records");
        pipeline.ingest_bucketed(collector.drain_buckets());
        for report in pipeline.poll((epoch + 1) * EPOCH_MS) {
            print_report(&topo, &scenario, &report, &collector.stats().snapshot());
            reports.push(report);
        }
    }
    let final_snap = collector.stats().snapshot();
    for report in pipeline.drain() {
        print_report(&topo, &scenario, &report, &final_snap);
        reports.push(report);
    }

    // ---- The run must have done what the paper's service does. ----
    assert!(
        reports.len() >= 3,
        "stream layer must emit at least 3 epochs, got {}",
        reports.len()
    );
    for report in &reports {
        let truth = scenario.scenario_at(report.epoch_index).truth;
        let pr = flock::core::evaluate(&topo, &report.result.predicted, &truth);
        if !truth.is_empty() {
            assert_eq!(
                (pr.precision, pr.recall),
                (1.0, 1.0),
                "epoch {}: active fault must be blamed exactly (blamed {:?}, truth {:?})",
                report.epoch_index,
                report.result.predicted,
                truth.failed_links
            );
        }
    }
    let snap = collector.stats().snapshot();
    println!(
        "\ndaemon done: {} epochs, {} records / {} bytes over {} connections \
         ({} decode errors, {} dropped)",
        reports.len(),
        snap.records,
        snap.bytes,
        snap.connections,
        snap.decode_errors,
        snap.dropped_records
    );
    collector.shutdown();
}

fn print_report(
    topo: &Topology,
    scenario: &DynamicScenario,
    report: &EpochReport,
    snap: &flock::telemetry::StatsSnapshot,
) {
    let truth = scenario.scenario_at(report.epoch_index).truth;
    let pr = flock::core::evaluate(topo, &report.result.predicted, &truth);
    let warm = report.shards.iter().filter(|s| s.warm).count();
    // Evidence coalescing across shard engines: raw accepted
    // observations vs the weighted super-flows actually inferred over.
    // Both sums count an observation once per shard whose filter accepts
    // it, so they measure shard-engine work (and its reduction), not the
    // epoch's assembled observation count — that is `report.observations`.
    let raw: usize = report.shards.iter().map(|s| s.raw_flows).sum();
    let sflows: usize = report.shards.iter().map(|s| s.flows).sum();
    // The spine tier's plane dimension: how many plane engines ran and
    // how much evidence each saw (plus whether the cross-plane
    // refinement pass had to arbitrate this epoch).
    let plane_flows: Vec<String> = report.spine_planes().map(|s| s.flows.to_string()).collect();
    let refine = match &report.refined {
        Some(r) => format!(" | refine kept {} ({} obs)", r.kept, r.raw_flows),
        None => String::new(),
    };
    // Resident-state locality: the largest shard engine's local
    // component space vs the topology-wide one (every shard's per-epoch
    // resets and Δ scans are bounded by its own number, not the global).
    let max_comps = report
        .shards
        .iter()
        .map(|s| s.state.comps)
        .max()
        .unwrap_or(0);
    let global_comps = report
        .shards
        .first()
        .map(|s| s.state.global_comps)
        .unwrap_or(0);
    println!(
        "epoch {:>2} [{:>5}ms..{:>5}ms): {:>5} records → {:>4} obs | shard evidence \
         {:>5} → {:>4} super-flows (x{:.1}) | {} planes [{}]{refine} | Δ≤{max_comps}/{global_comps} \
         | blamed {:?} \
         | truth {:?} | P {:.2} R {:.2} | {}/{} shards warm | conns {} up / {} closed | {:?}",
        report.epoch_index,
        report.start_ms,
        report.end_ms,
        report.records,
        report.observations,
        raw,
        sflows,
        raw as f64 / sflows.max(1) as f64,
        plane_flows.len(),
        plane_flows.join("/"),
        report.result.predicted,
        truth.failed_links,
        pr.precision,
        pr.recall,
        warm,
        report.shards.len(),
        snap.active_connections,
        snap.closed_connections,
        report.result.runtime,
    );
}
