//! `flock-daemon` — the continuously-running localization service of
//! §5.1, end to end: per-host agents export 52-byte IPFIX-style records
//! (wire v2, epoch-stamped) over real TCP sockets to the sharded
//! reactor collector; the stream layer takes the pre-bucketed drain
//! into epochs and localizes each one with warm-started, pod-sharded
//! inference while a fault appears, persists, and heals — and every
//! verdict lands in a durable [`VerdictStore`]: blame history, debounced
//! alerts, and per-verdict provenance, all queryable and all surviving
//! a store close/reopen (asserted at the end of the run).
//!
//! One structured log line per epoch (human by default, one JSON object
//! per line with `--json`), plus a periodic metrics snapshot from the
//! store's registry.
//!
//! ```text
//! cargo run --release --example flock_daemon [-- --json] [-- --approx]
//! ```
//!
//! `--approx` switches evidence coalescing to the bucketed approximate
//! mode (default ε): every epoch line then carries the likelihood drift
//! bound, the search's decision margin, and whether the verdict is
//! *proven* identical to exact inference (margin > 2 × bound).

use flock::prelude::*;
use flock::telemetry::agent::{AgentConfig, AgentCore, Exporter, FlowSample};
use rand::SeedableRng;
use std::collections::HashMap;

const EPOCHS: u64 = 6;
const EPOCH_MS: u64 = 1_000;
const FLOWS_PER_EPOCH: usize = 3_000;
/// Epochs between metrics-snapshot emissions.
const METRICS_EVERY: u64 = 3;

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let coalesce_mode = if std::env::args().any(|a| a == "--approx") {
        CoalesceMode::approx_default()
    } else {
        CoalesceMode::Exact
    };
    // Resolve the inference kernel dispatch once, up front: every shard
    // engine this process builds runs its Δ sweeps and argmax at this
    // level. Scalar and SIMD are bit-identical (property-tested), so
    // the level never changes a verdict — only how fast it arrives.
    let kernel = KernelDispatch::resolve();
    if json {
        println!(
            "{}",
            serde::json::to_string(&StartupLog {
                kernel,
                coalesce: coalesce_mode.label(),
            })
        );
    } else {
        println!(
            "kernels: {kernel} dispatch (FLOCK_NO_SIMD=1 forces portable) | coalesce {}",
            coalesce_mode.label()
        );
    }
    let topo = flock::topology::clos::three_tier(ClosParams {
        pods: 3,
        tors_per_pod: 2,
        aggs_per_pod: 2,
        spines_per_plane: 2,
        hosts_per_tor: 3,
    });
    let router = Router::new(&topo);
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);

    // A fault timeline: one gray link failure appearing at epoch 1 and
    // healing at epoch 4.
    let mut scenario = DynamicScenario::noise_only(&topo, 1e-4, &mut rng);
    let faulty = topo.fabric_links()[9];
    scenario.events.push(FaultEvent {
        link: faulty,
        drop_rate: 0.02,
        appear_epoch: 1,
        heal_epoch: Some(4),
    });
    if !json {
        println!(
            "daemon: watching {} ({} links, {} switches); fault on {faulty:?} over epochs [1, 4)",
            topo.name,
            topo.link_count(),
            topo.switch_count()
        );
    }

    let collector = Collector::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    if !json {
        println!(
            "collector listening on {} ({} reactor shards)",
            collector.local_addr(),
            collector.reactor_shards()
        );
    }

    let mut pipeline = StreamPipeline::new(
        &topo,
        StreamConfig {
            epoch: EpochConfig::tumbling(EPOCH_MS),
            kinds: vec![InputKind::A2, InputKind::P],
            mode: AnalysisMode::PerPacket,
            warm_start: true,
            shard_by_pod: true,
            // Overlap epochs: assembly of epoch N+1 runs while N's
            // shards infer; reports trail submission by one epoch and
            // drain() flushes the tail. Verdicts are bit-identical to
            // the sequential mode.
            pipelined: true,
            coalesce_mode,
            ..StreamConfig::paper_default()
        },
    );
    if !json {
        println!(
            "stream: {} shards ({}), warm start on, pipelined epochs on",
            pipeline.plan().len(),
            pipeline
                .plan()
                .shards
                .iter()
                .map(|s| s.label.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    // The verdict store: tier 1 kept deliberately tiny so the
    // end-of-run queries demonstrably hit the durable tier; alerts
    // raise after 2 persisting epochs and clear after 1 clean one.
    let store_path = std::env::temp_dir().join(format!("flock_daemon_{}.seg", std::process::id()));
    let store_cfg = StoreConfig {
        ring_capacity: 2,
        policy: AlertPolicy {
            raise_epochs: 2,
            clear_epochs: 1,
            ..AlertPolicy::default()
        },
    };
    let mut store = VerdictStore::create(store_cfg, &store_path).unwrap();
    store
        .metrics_mut()
        .set_gauge("kernel_dispatch_level", kernel.level() as f64);
    if !json {
        println!(
            "store: durable segment at {} (ring {} epochs, raise after {}, clear after {})\n",
            store_path.display(),
            store_cfg.ring_capacity,
            store_cfg.policy.raise_epochs,
            store_cfg.policy.clear_epochs
        );
    }

    let mut reports: Vec<EpochReport> = Vec::new();
    for epoch in 0..EPOCHS {
        // ---- The network under its current condition. ----
        let snapshot = scenario.scenario_at(epoch);
        let demands = flock::netsim::traffic::generate_demands(
            &topo,
            &TrafficConfig::paper(FLOWS_PER_EPOCH, TrafficPattern::Uniform),
            &mut rng,
        );
        let flows = flock::netsim::flowsim::simulate_flows(
            &topo,
            &router,
            &snapshot,
            &demands,
            &FlowSimConfig::default(),
            &mut rng,
        );

        // ---- Per-host agents export over real sockets. ----
        let mut per_host: HashMap<NodeId, Vec<&MonitoredFlow>> = HashMap::new();
        for f in &flows {
            per_host.entry(f.key.src).or_default().push(f);
        }
        let export_ms = epoch * EPOCH_MS + EPOCH_MS / 2;
        for (host, host_flows) in &per_host {
            // Wire v2: exports are stamped with the collector-agreed
            // epoch so records arrive pre-bucketed.
            let mut agent = AgentCore::new(AgentConfig {
                agent_id: host.0,
                epoch_hint_ms: Some(EPOCH_MS),
                ..Default::default()
            });
            for f in host_flows {
                agent.observe(FlowSample {
                    key: f.key,
                    packets: f.stats.packets,
                    retransmissions: f.stats.retransmissions,
                    bytes: f.stats.bytes,
                    rtt_us: Some(f.stats.rtt_max_us),
                    // A2-style: flagged flows get their path traced.
                    path: (f.stats.retransmissions > 0).then(|| f.true_path.clone()),
                    class: flock::telemetry::TrafficClass::Passive,
                });
            }
            let records = agent.export();
            let msgs = agent.encode_export(export_ms, &records);
            let mut exporter = Exporter::connect(collector.local_addr()).unwrap();
            for m in &msgs {
                exporter.send(m).unwrap();
            }
            exporter.finish().unwrap();
        }

        // ---- Drain, window, localize, store. ----
        let expected = flows.len();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while collector.pending() < expected && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(collector.pending(), expected, "collector lost records");
        pipeline.ingest_bucketed(collector.drain_buckets());
        for report in pipeline.poll((epoch + 1) * EPOCH_MS) {
            ingest_and_log(
                &topo,
                &scenario,
                &mut store,
                &report,
                &collector,
                coalesce_mode,
                json,
            );
            reports.push(report);
        }
    }
    for report in pipeline.drain() {
        ingest_and_log(
            &topo,
            &scenario,
            &mut store,
            &report,
            &collector,
            coalesce_mode,
            json,
        );
        reports.push(report);
    }
    store.sync().unwrap();

    // ---- The run must have done what the paper's service does. ----
    assert!(
        reports.len() >= 3,
        "stream layer must emit at least 3 epochs, got {}",
        reports.len()
    );
    for report in &reports {
        // A fault in the *monitored network* is the daemon's job, not a
        // pipeline failure: every epoch of this run must be healthy.
        assert!(
            !report.health.is_degraded(),
            "epoch {}: chaos-free run must stay healthy, got {:?}",
            report.epoch_index,
            report.health
        );
        let truth = scenario.scenario_at(report.epoch_index).truth;
        let pr = flock::core::evaluate(&topo, &report.result.predicted, &truth);
        if !truth.is_empty() {
            assert_eq!(
                (pr.precision, pr.recall),
                (1.0, 1.0),
                "epoch {}: active fault must be blamed exactly (blamed {:?}, truth {:?})",
                report.epoch_index,
                report.result.predicted,
                truth.failed_links
            );
        }
    }

    // ---- And the store must answer for it — before AND after a
    // close/reopen (history, the one debounced alert, provenance). ----
    let comp = flock::topology::Component::Link(faulty);
    check_store(&mut store, comp, "live store");
    drop(store);
    let mut reopened = VerdictStore::open(store_cfg, &store_path).unwrap();
    assert!(
        reopened.torn().is_none(),
        "clean close must leave no torn tail"
    );
    check_store(&mut reopened, comp, "reopened store");
    let prov = reopened
        .provenance(comp, 1)
        .expect("epoch-1 provenance must survive reopen (durable tier: ring is 2)");

    let snap = collector.stats().snapshot();
    if json {
        println!("{}", serde::json::to_string(&reopened.metrics_snapshot()));
    } else {
        println!(
            "\ndaemon done: {} epochs, {} records / {} bytes over {} connections \
             ({} decode errors, {} dropped)",
            reports.len(),
            snap.records,
            snap.bytes,
            snap.connections,
            snap.decode_errors,
            snap.dropped_records
        );
        let alert = &reopened.alerts()[0];
        println!(
            "store: blame history {:?} | alert raised @{} cleared @{:?} | provenance for \
             epoch 1: shard {} convicted via {} super-flows (weight {:.0}, sets {:?}) | \
             {} durable epochs, {} bytes",
            reopened
                .history(comp)
                .iter()
                .map(|s| s.epoch)
                .collect::<Vec<_>>(),
            alert.raised_epoch,
            alert.cleared_epoch,
            prov.shard,
            prov.super_flows,
            prov.raw_weight,
            prov.sets,
            reopened.durable_epochs(),
            reopened.segment_bytes()
        );
    }
    collector.shutdown();
    let _ = std::fs::remove_file(&store_path);
}

/// The acceptance checks, applied to the live store and again after
/// close/reopen: queryable blame history, exactly one debounced alert
/// (raised after 2 persisting epochs, cleared on heal), non-empty
/// provenance naming the convicting super-flows and shard.
fn check_store(store: &mut VerdictStore, comp: flock::topology::Component, what: &str) {
    let epochs: Vec<u64> = store.history(comp).iter().map(|s| s.epoch).collect();
    assert_eq!(epochs, vec![1, 2, 3], "{what}: blame history");
    assert_eq!(
        store.alerts().len(),
        1,
        "{what}: exactly one debounced alert"
    );
    let alert = &store.alerts()[0];
    assert_eq!(alert.component, comp, "{what}: alert names the fault");
    assert_eq!(
        alert.raised_epoch, 2,
        "{what}: raised after 2 persisting epochs"
    );
    assert_eq!(alert.cleared_epoch, Some(4), "{what}: cleared on heal");
    assert!(
        store.active_alerts().is_empty(),
        "{what}: nothing left active"
    );
    for epoch in [1u64, 2, 3] {
        let prov = store
            .provenance(comp, epoch)
            .unwrap_or_else(|| panic!("{what}: provenance for blamed epoch {epoch}"));
        assert!(prov.super_flows > 0, "{what}: provenance names super-flows");
        assert!(!prov.shard.is_empty(), "{what}: provenance names its shard");
    }
}

/// The one-time startup line in `--json` mode: which kernel dispatch
/// level this process resolved (also exported as the store's
/// `kernel_dispatch_level` gauge, `0` portable / `1` AVX2).
#[derive(serde::Serialize)]
struct StartupLog {
    kernel: KernelDispatch,
    /// The configured coalescing mode's label (`exact`, `approx(eps=…)`).
    coalesce: String,
}

/// One structured log line per epoch — the same fields in both modes
/// (the PR 2–5 accounting: obs→super-flow ratio, plane evidence, Δ
/// local/global bound, warm counts; plus the store's alert activity).
#[derive(serde::Serialize)]
struct EpochLog {
    epoch: u64,
    start_ms: u64,
    end_ms: u64,
    records: usize,
    observations: usize,
    /// Raw accepted observations summed over shard engines (an
    /// observation counts once per shard whose filter accepts it).
    shard_raw_obs: usize,
    /// Weighted super-flows actually inferred over, same accounting.
    shard_super_flows: usize,
    coalesce_ratio: f64,
    /// The configured coalescing mode's label (`exact`,
    /// `approx(eps=…)`).
    coalesce: String,
    /// Worst-case likelihood drift introduced by approximate coalescing,
    /// summed over shards (0 in exact mode).
    drift_bound: f64,
    /// Smallest per-shard decision margin this epoch (clamped for JSON).
    decision_margin: f64,
    /// Every shard's verdict is provably identical to exact inference
    /// (margin > 2 × drift bound, or no drift). Trivially true in exact
    /// mode.
    proven_exact: bool,
    /// Per spine-plane super-flow counts, plane order.
    plane_flows: Vec<usize>,
    /// Components kept by the cross-plane refinement pass, if it ran.
    refine_kept: Option<usize>,
    /// Largest shard engine's local component space (the Δ bound)…
    delta_local_comps: usize,
    /// …vs the topology-wide component space.
    delta_global_comps: usize,
    blamed: Vec<flock::topology::Component>,
    truth: Vec<LinkId>,
    precision: f64,
    recall: f64,
    warm_shards: usize,
    shards: usize,
    /// The epoch's health verdict: `false` means every shard completed
    /// on full evidence.
    degraded: bool,
    /// Machine-stable degradation reasons (`shard-panicked:pod2`,
    /// `late-records:17`, ...), empty when healthy.
    degrade_reasons: Vec<String>,
    /// Fraction of shard-relevant evidence that reached a completed
    /// shard (1.0 when healthy).
    evidence_coverage: f64,
    /// The store's durability tier after this ingest (`RingOnly` once
    /// a segment append has failed).
    durability: Durability,
    /// Operational (store self-diagnosis) alerts raised so far.
    ops_alerts: usize,
    /// Agents the collector currently tracks as live.
    agents_live: usize,
    /// Alerts the store raised on this epoch's ingest.
    alerts_raised: Vec<Alert>,
    /// Alerts it cleared.
    alerts_cleared: Vec<Alert>,
    active_alerts: u64,
    conns_up: u64,
    conns_closed: u64,
    runtime_ms: f64,
}

fn ingest_and_log(
    topo: &Topology,
    scenario: &DynamicScenario,
    store: &mut VerdictStore,
    report: &EpochReport,
    collector: &Collector,
    mode: CoalesceMode,
    json: bool,
) {
    let delta = store.ingest(report);
    let snap = collector.stats().snapshot();
    let truth = scenario.scenario_at(report.epoch_index).truth;
    let pr = flock::core::evaluate(topo, &report.result.predicted, &truth);
    let raw: usize = report.shards.iter().map(|s| s.raw_flows).sum();
    let sflows: usize = report.shards.iter().map(|s| s.flows).sum();
    let coalesce_ratio = raw as f64 / sflows.max(1) as f64;
    let drift_bound: f64 = report.shards.iter().map(|s| s.drift_bound).sum();
    let decision_margin = report
        .shards
        .iter()
        .map(|s| s.margin)
        .fold(f64::INFINITY, f64::min)
        .min(1e12);
    let proven_exact = report.shards.iter().all(|s| s.proven_exact);
    // The approx accounting as gauges, so operators can alert on an
    // uncertified epoch or a sagging merge ratio without parsing logs.
    store
        .metrics_mut()
        .set_gauge("approx_coalesce_ratio", coalesce_ratio);
    store
        .metrics_mut()
        .set_gauge("approx_drift_bound", drift_bound);
    store
        .metrics_mut()
        .set_gauge("approx_decision_margin", decision_margin);
    store
        .metrics_mut()
        .set_gauge("approx_proven_exact", f64::from(u8::from(proven_exact)));
    let log = EpochLog {
        epoch: report.epoch_index,
        start_ms: report.start_ms,
        end_ms: report.end_ms,
        records: report.records,
        observations: report.observations,
        shard_raw_obs: raw,
        shard_super_flows: sflows,
        coalesce_ratio,
        coalesce: mode.label(),
        drift_bound,
        decision_margin,
        proven_exact,
        plane_flows: report.spine_planes().map(|s| s.flows).collect(),
        refine_kept: report.refined.as_ref().map(|r| r.kept),
        delta_local_comps: report
            .shards
            .iter()
            .map(|s| s.state.comps)
            .max()
            .unwrap_or(0),
        delta_global_comps: report
            .shards
            .first()
            .map(|s| s.state.global_comps)
            .unwrap_or(0),
        blamed: report.result.predicted.clone(),
        truth: truth.failed_links.clone(),
        precision: pr.precision,
        recall: pr.recall,
        warm_shards: report.shards.iter().filter(|s| s.warm).count(),
        shards: report.shards.len(),
        degraded: report.health.is_degraded(),
        degrade_reasons: report
            .health
            .reasons()
            .iter()
            .map(|r| r.to_string())
            .collect(),
        evidence_coverage: report.health.evidence_coverage(),
        durability: store.durability(),
        ops_alerts: store.ops_alerts().len(),
        agents_live: collector.liveness().len(),
        alerts_raised: delta.raised,
        alerts_cleared: delta.cleared,
        active_alerts: store.metrics().gauge("active_alerts").unwrap_or(0.0) as u64,
        conns_up: snap.active_connections,
        conns_closed: snap.closed_connections,
        runtime_ms: report.result.runtime.as_secs_f64() * 1e3,
    };
    if json {
        println!("{}", serde::json::to_string(&log));
    } else {
        let planes: Vec<String> = log.plane_flows.iter().map(|f| f.to_string()).collect();
        let refine = match log.refine_kept {
            Some(k) => format!(" | refine kept {k}"),
            None => String::new(),
        };
        let alerts = if !log.alerts_raised.is_empty() {
            format!(
                " | ALERT raised {:?}",
                log.alerts_raised
                    .iter()
                    .map(|a| a.component)
                    .collect::<Vec<_>>()
            )
        } else if !log.alerts_cleared.is_empty() {
            format!(
                " | alert cleared {:?}",
                log.alerts_cleared
                    .iter()
                    .map(|a| a.component)
                    .collect::<Vec<_>>()
            )
        } else {
            String::new()
        };
        let health = if log.degraded {
            format!(
                " | DEGRADED cov {:.2} [{}]",
                log.evidence_coverage,
                log.degrade_reasons.join(", ")
            )
        } else {
            String::new()
        };
        let durability = if log.durability != Durability::Durable {
            format!(
                " | store {:?} ({} ops alerts)",
                log.durability, log.ops_alerts
            )
        } else {
            String::new()
        };
        let approx = if mode.is_approx() {
            format!(
                " | drift ≤{:.2} margin {:.2} {}",
                log.drift_bound,
                log.decision_margin,
                if log.proven_exact {
                    "PROVEN"
                } else {
                    "uncertified"
                }
            )
        } else {
            String::new()
        };
        println!(
            "epoch {:>2} [{:>5}ms..{:>5}ms): {:>5} records → {:>4} obs | shard evidence \
             {:>5} → {:>4} super-flows (x{:.1}) | {} planes [{}]{refine} | \
             Δ≤{}/{} | blamed {:?} | truth {:?} | P {:.2} R {:.2} | {}/{} shards warm | \
             {} agents live | conns {} up / {} closed | {:.1}ms{approx}{alerts}{health}{durability}",
            log.epoch,
            log.start_ms,
            log.end_ms,
            log.records,
            log.observations,
            log.shard_raw_obs,
            log.shard_super_flows,
            log.coalesce_ratio,
            log.plane_flows.len(),
            planes.join("/"),
            log.delta_local_comps,
            log.delta_global_comps,
            log.blamed,
            log.truth,
            log.precision,
            log.recall,
            log.warm_shards,
            log.shards,
            log.agents_live,
            log.conns_up,
            log.conns_closed,
            log.runtime_ms,
        );
    }
    // The periodic metrics snapshot from the store's registry.
    if (report.epoch_index + 1) % METRICS_EVERY == 0 {
        if json {
            println!("{}", serde::json::to_string(&store.metrics_snapshot()));
        } else {
            let m = store.metrics();
            println!(
                "metrics: epochs {} | records {} | flips/s {:.0} | shard engine mean {:.2}ms \
                 | appends mean {:.3}ms | alerts {}/{} raised/cleared | segment {}B",
                m.counter("epochs_ingested"),
                m.counter("records_ingested"),
                m.gauge("flip_throughput_per_s").unwrap_or(0.0),
                m.histogram("shard_engine_ms")
                    .map(|h| h.mean())
                    .unwrap_or(0.0),
                m.histogram("append_ms").map(|h| h.mean()).unwrap_or(0.0),
                m.counter("alerts_raised"),
                m.counter("alerts_cleared"),
                m.gauge("segment_bytes").unwrap_or(0.0) as u64,
            );
        }
    }
}
