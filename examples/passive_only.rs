//! Passive-only localization on irregular fabrics (§7.6, Fig. 5c).
//!
//! With only NetFlow/IPFIX-style passive reports, flows carry ECMP path
//! *sets* instead of paths — the setting where past schemes do not apply
//! at all. On a perfectly symmetric Clos, parallel links are
//! observationally equivalent and the best any scheme can do is name the
//! equivalence class; as links are omitted the symmetry breaks and
//! Flock (P)'s precision climbs toward the theoretical ceiling.
//!
//! ```text
//! cargo run --release --example passive_only
//! ```

use flock::prelude::*;
use flock::topology::{irregular, EquivalenceClasses, NodeRole};
use rand::SeedableRng;

fn main() {
    let base = flock::topology::clos::three_tier(ClosParams {
        pods: 4,
        tors_per_pod: 4,
        aggs_per_pod: 2,
        spines_per_plane: 4,
        hosts_per_tor: 6,
    });

    println!(
        "{:<10} {:>10} {:>8} {:>22} {:>14}",
        "% omitted", "precision", "recall", "theoretical max prec", "eq classes"
    );
    for (i, frac) in [0.0, 0.02, 0.05, 0.10, 0.20].iter().enumerate() {
        let topo = if *frac == 0.0 {
            base.clone()
        } else {
            match irregular::omit_links_routable(&base, *frac, 31 + i as u64, 16) {
                Some((t, _)) => t,
                None => {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(31 + i as u64);
                    irregular::omit_links(&base, *frac, &mut rng).0
                }
            }
        };
        let router = Router::new(&topo);

        // Equivalence classes of the passive observables (leaf-pair path
        // sets) give the precision ceiling.
        let leaves: Vec<NodeId> = topo
            .switches()
            .iter()
            .copied()
            .filter(|s| topo.node(*s).role == NodeRole::Leaf)
            .collect();
        let mut sets = Vec::new();
        for a in &leaves {
            for b in &leaves {
                if a != b {
                    sets.push(router.paths(*a, *b).to_vec());
                }
            }
        }
        let eq = EquivalenceClasses::compute(topo.link_count(), sets.iter().map(|s| s.iter()));
        let ceiling = eq.max_precision(&topo.fabric_links());

        // Average Flock (P) over a few single-failure episodes.
        let mut acc = flock::core::MetricsAccumulator::new();
        for seed in 0..6u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1000 * (i as u64 + 1) + seed);
            let scenario = flock::netsim::failure::single_soft_failure(&topo, 0.01, 1e-4, &mut rng);
            let demands = flock::netsim::traffic::generate_demands(
                &topo,
                &TrafficConfig::paper(20_000, TrafficPattern::Uniform),
                &mut rng,
            );
            let flows = flock::netsim::flowsim::simulate_flows(
                &topo,
                &router,
                &scenario,
                &demands,
                &FlowSimConfig::default(),
                &mut rng,
            );
            let obs = flock::telemetry::input::assemble(
                &topo,
                &router,
                &flows,
                &[InputKind::P],
                AnalysisMode::PerPacket,
            );
            let result = FlockGreedy::default().localize(&topo, &obs);
            acc.add(evaluate(&topo, &result.predicted, &scenario.truth));
        }
        let pr = acc.mean();
        println!(
            "{:<10.0} {:>10.3} {:>8.3} {:>22.3} {:>14}",
            frac * 100.0,
            pr.precision,
            pr.recall,
            ceiling,
            eq.class_count()
        );
    }
    println!("\nPrecision below 1.0 with high recall means Flock narrowed the fault to");
    println!("its equivalence class — 2-3 candidate links an operator checks by hand (§7.6).");
}
