//! End-to-end live pipeline: simulated hosts run monitoring agents that
//! export 52-byte IPFIX-style records over real TCP sockets to the
//! collector, which periodically hands the snapshot to the inference
//! engine — the deployment loop of §5.1 compressed into one process.
//!
//! ```text
//! cargo run --release --example agent_collector
//! ```

use flock::prelude::*;
use flock::telemetry::agent::{AgentConfig, AgentCore, Exporter, FlowSample};
use rand::SeedableRng;
use std::collections::HashMap;

fn main() {
    let topo = flock::topology::clos::three_tier(ClosParams {
        pods: 3,
        tors_per_pod: 2,
        aggs_per_pod: 2,
        spines_per_plane: 2,
        hosts_per_tor: 4,
    });
    let router = Router::new(&topo);
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);

    // Gray failure: one link drops 2%.
    let scenario =
        flock::netsim::failure::silent_link_drops(&topo, 1, (0.02, 0.02), 1e-4, &mut rng);
    println!("injected failure: {:?}", scenario.truth.failed_links);

    // Simulate application traffic.
    let demands = flock::netsim::traffic::generate_demands(
        &topo,
        &TrafficConfig::paper(4_000, TrafficPattern::Uniform),
        &mut rng,
    );
    let flows = flock::netsim::flowsim::simulate_flows(
        &topo,
        &router,
        &scenario,
        &demands,
        &FlowSimConfig::default(),
        &mut rng,
    );

    // The collector listens on loopback.
    let collector = Collector::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    println!("collector listening on {}", collector.local_addr());

    // One agent per host; each observes its host's flows. Flagged flows
    // (>=1 retransmission) get their path traced, 007-style (A2).
    let mut per_host: HashMap<NodeId, Vec<&MonitoredFlow>> = HashMap::new();
    for f in &flows {
        per_host.entry(f.key.src).or_default().push(f);
    }
    for (host, host_flows) in &per_host {
        let mut agent = AgentCore::new(AgentConfig {
            agent_id: host.0,
            ..Default::default()
        });
        for f in host_flows {
            agent.observe(FlowSample {
                key: f.key,
                packets: f.stats.packets,
                retransmissions: f.stats.retransmissions,
                bytes: f.stats.bytes,
                rtt_us: Some(f.stats.rtt_max_us),
                path: (f.stats.retransmissions > 0).then(|| f.true_path.clone()),
                class: flock::telemetry::TrafficClass::Passive,
            });
        }
        let records = agent.export();
        let msgs = agent.encode_export(0, &records);
        let mut exporter = Exporter::connect(collector.local_addr()).unwrap();
        for m in &msgs {
            exporter.send(m).unwrap();
        }
        exporter.finish().unwrap();
    }

    // Wait for the collector to drain the sockets.
    let expected = flows.len();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while collector.pending() < expected && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let records = collector.drain();
    let snap = collector.stats().snapshot();
    println!(
        "collected {} records ({} connections, {} messages, {} bytes, {} errors)",
        records.len(),
        snap.connections,
        snap.messages,
        snap.bytes,
        snap.decode_errors
    );

    // Reconstruct monitored flows from the wire records (paths are known
    // only where the agents traced them) and run inference on A2+P.
    let monitored: Vec<MonitoredFlow> = records
        .into_iter()
        .map(|r| MonitoredFlow {
            key: r.key,
            stats: r.stats,
            class: r.class,
            true_path: r.path.unwrap_or_default(),
        })
        .collect();
    let obs = flock::telemetry::input::assemble(
        &topo,
        &router,
        &monitored,
        &[InputKind::A2, InputKind::P],
        AnalysisMode::PerPacket,
    );
    let result = FlockGreedy::default().localize(&topo, &obs);
    let pr = evaluate(&topo, &result.predicted, &scenario.truth);
    println!(
        "\nFlock (A2+P) blamed {:?} — precision {:.2}, recall {:.2}",
        result.predicted, pr.precision, pr.recall
    );
    collector.shutdown();
}
