//! Quickstart: inject a silent gray failure into a small Clos fabric,
//! simulate telemetry, and let Flock find it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use flock::prelude::*;
use rand::SeedableRng;

fn main() {
    // A small three-tier Clos (2 pods is enough for a demo).
    let topo = flock::topology::clos::three_tier(ClosParams {
        pods: 3,
        tors_per_pod: 2,
        aggs_per_pod: 2,
        spines_per_plane: 2,
        hosts_per_tor: 4,
    });
    let router = Router::new(&topo);
    println!(
        "fabric: {} ({} switches, {} directed links, {} hosts)",
        topo.name,
        topo.switch_count(),
        topo.link_count(),
        topo.hosts().len()
    );

    // One link silently drops 1% of packets; good links are clean up to
    // 0.01% noise — the classic gray failure.
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let scenario =
        flock::netsim::failure::silent_link_drops(&topo, 1, (0.01, 0.01), 1e-4, &mut rng);
    let bad = scenario.truth.failed_links[0];
    let bad_link = topo.link(bad);
    println!(
        "injected: {bad:?} ({:?} -> {:?}) dropping {:.2}%\n",
        bad_link.src,
        bad_link.dst,
        scenario.link_drop_rate(bad) * 100.0
    );

    // Simulate 5000 TCP flows and assemble INT-style telemetry (paths
    // known for all flows).
    let demands = flock::netsim::traffic::generate_demands(
        &topo,
        &TrafficConfig::paper(5_000, TrafficPattern::Uniform),
        &mut rng,
    );
    let flows = flock::netsim::flowsim::simulate_flows(
        &topo,
        &router,
        &scenario,
        &demands,
        &FlowSimConfig::default(),
        &mut rng,
    );
    let obs = flock::telemetry::input::assemble(
        &topo,
        &router,
        &flows,
        &[InputKind::Int],
        AnalysisMode::PerPacket,
    );
    println!(
        "telemetry: {} flows -> {} aggregated observations",
        flows.len(),
        obs.flows.len()
    );

    // Run Flock's greedy + JLE inference.
    let result = FlockGreedy::default().localize(&topo, &obs);
    println!(
        "\nFlock searched {} hypotheses in {:?}:",
        result.hypotheses_scanned, result.runtime
    );
    for (c, score) in result.predicted.iter().zip(&result.scores) {
        println!("  blamed {c:?}  (log-likelihood gain {score:.1})");
    }

    let pr = evaluate(&topo, &result.predicted, &scenario.truth);
    println!(
        "\nprecision {:.2}, recall {:.2} — {}",
        pr.precision,
        pr.recall,
        if pr.precision == 1.0 && pr.recall == 1.0 {
            "exact localization"
        } else {
            "partial localization"
        }
    );
}
