//! Offline vendored proptest-compatible property-testing harness.
//!
//! Implements the slice of the `proptest` API this workspace uses: the
//! [`Strategy`] trait (ranges, tuples, `prop_map`), [`arbitrary::any`],
//! [`collection::vec`], [`option::of`], the [`proptest!`] macro, and the
//! `prop_assert*` macros. Inputs are generated from a deterministic
//! seeded RNG — every run exercises the same cases, so failures reproduce
//! without persistence files. No shrinking is performed: the failing
//! case's panic message plus determinism substitute for it.

pub use rand::rngs::StdRng;
use rand::RngExt;
#[doc(hidden)]
pub use rand::SeedableRng as __SeedableRng;

/// Runner configuration (`cases` = inputs generated per property).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of an associated type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// `any::<T>()` support.
pub mod arbitrary {
    use super::{StdRng, Strategy};
    use rand::RngExt;

    /// Types with a canonical full-range uniform strategy.
    pub trait Arbitrary: Sized {
        /// Generate one uniform value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.random::<u64>() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.random()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            // Finite, mixed-sign, wide-magnitude floats.
            let mag: f64 = rng.random::<f64>() * 1e6;
            if rng.random() {
                mag
            } else {
                -mag
            }
        }
    }

    /// The `any::<T>()` strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A uniform strategy over the whole of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub use arbitrary::any;

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::RngExt;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// `vec(element, min..max)`: vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.random_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{StdRng, Strategy};
    use rand::RngExt;

    /// Strategy for `Option<S::Value>` (`Some` three times in four).
    pub struct OptionStrategy<S>(S);

    /// `of(inner)`: `None` or `Some(inner)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.random_range(0..4u32) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Everything a property test module needs, glob-import style.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};

    /// Namespaced strategy modules, proptest-style (`prop::collection`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Assert inside a property (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $p:ident in $s:expr) => {
        let $p = $crate::Strategy::generate(&($s), &mut $rng);
    };
    ($rng:ident; $p:ident in $s:expr, $($rest:tt)*) => {
        let $p = $crate::Strategy::generate(&($s), &mut $rng);
        $crate::__proptest_bind!{$rng; $($rest)*}
    };
    ($rng:ident; $p:ident : $t:ty) => {
        let $p: $t = $crate::Strategy::generate(&$crate::any::<$t>(), &mut $rng);
    };
    ($rng:ident; $p:ident : $t:ty, $($rest:tt)*) => {
        let $p: $t = $crate::Strategy::generate(&$crate::any::<$t>(), &mut $rng);
        $crate::__proptest_bind!{$rng; $($rest)*}
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    ($cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            // Deterministic per-property seed: derived from the name so
            // distinct properties explore distinct streams.
            let mut __seed: u64 = 0xf10c_a9e5_7e57_0001;
            for b in stringify!($name).bytes() {
                __seed = __seed.wrapping_mul(0x100_0000_01b3) ^ (b as u64);
            }
            let mut __rng = <$crate::StdRng as $crate::__SeedableRng>::seed_from_u64(__seed);
            for __case in 0..__cfg.cases {
                $crate::__proptest_bind!{__rng; $($params)*}
                $body
            }
        }
        $crate::__proptest_fns!{$cfg; $($rest)*}
    };
}

/// Define property tests, proptest-style: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// parameters are either `name in strategy` or `name: Type` (shorthand for
/// `any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{$cfg; $($rest)*}
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{$crate::ProptestConfig{cases: 64}; $($rest)*}
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, u32)> {
        (1u32..10, 1u32..10).prop_map(|(a, b)| (a, a + b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y: bool, z in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            let _: bool = y; // `name: Type` params desugar to any::<Type>()
            prop_assert!((0.0..1.0).contains(&z));
        }

        #[test]
        fn mapped_tuple_order(p in arb_pair()) {
            prop_assert!(p.0 < p.1);
        }

        #[test]
        fn vec_and_option(
            v in prop::collection::vec(any::<u16>(), 2..8),
            o in prop::option::of(1u8..3),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 8);
            if let Some(x) = o {
                prop_assert!((1..3).contains(&x));
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::__SeedableRng;
        let mut a = crate::StdRng::seed_from_u64(5);
        let mut b = crate::StdRng::seed_from_u64(5);
        let s = (0u64..100, 0u64..100);
        for _ in 0..20 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
