//! Offline vendored criterion-compatible benchmark harness.
//!
//! Implements the slice of the `criterion` API this workspace's benches
//! use — [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`]
//! / [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`] — with a simple but honest measurement
//! loop: warm up, then time batches until a target measurement budget is
//! spent, and report the mean, min, and max per-iteration time (plus
//! derived throughput when declared).
//!
//! Under `cargo test` (cargo passes `--test` to `harness = false` bench
//! targets) every benchmark body runs exactly once as a smoke test, so CI
//! exercises the bench code without paying for measurement.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported for bench bodies.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Declared work per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Passed to bench closures; [`Bencher::iter`] runs and times the routine.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Filled in by `iter`: (iterations, total, min, max).
    result: Option<(u64, Duration, Duration, Duration)>,
}

impl Bencher<'_> {
    /// Measure `routine`, keeping its return value alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.config.smoke_only {
            std_black_box(routine());
            self.result = Some((1, Duration::ZERO, Duration::ZERO, Duration::ZERO));
            return;
        }
        // Warmup: one untimed call (also primes caches/allocators).
        std_black_box(routine());

        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let budget = self.config.measurement_time;
        let max_iters = self.config.sample_size.max(1) as u64 * 100;
        while total < budget && iters < max_iters {
            let start = Instant::now();
            std_black_box(routine());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
            max = max.max(dt);
            iters += 1;
        }
        self.result = Some((iters, total, min, max));
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    smoke_only: bool,
}

impl Config {
    fn from_env() -> Self {
        // `cargo test` runs harness=false bench targets with `--test`;
        // `cargo bench` passes `--bench`. Any explicit filter argument is
        // ignored (all benches run).
        let smoke_only = std::env::args().any(|a| a == "--test");
        Config {
            sample_size: 20,
            measurement_time: Duration::from_millis(400),
            smoke_only,
        }
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group_name: String,
    throughput: Option<Throughput>,
    config: Config,
}

impl BenchmarkGroup<'_> {
    /// Set the target number of samples (scales the iteration cap).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Set the measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.config.measurement_time = t;
        self
    }

    /// Declare per-iteration work for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut b = Bencher {
            config: &self.config,
            result: None,
        };
        f(&mut b);
        report(&self.group_name, &id.name, self.throughput, &b);
        let _ = &self.criterion;
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            config: &self.config,
            result: None,
        };
        f(&mut b, input);
        report(&self.group_name, &id.name, self.throughput, &b);
        self
    }

    /// End the group (prints nothing extra; reports are per-benchmark).
    pub fn finish(&mut self) {}
}

fn report(group: &str, name: &str, throughput: Option<Throughput>, b: &Bencher<'_>) {
    let Some((iters, total, min, max)) = b.result else {
        eprintln!("{group}/{name}: benchmark body never called iter()");
        return;
    };
    if total.is_zero() {
        println!("{group}/{name}: smoke-tested (1 iteration)");
        return;
    }
    let mean = total / iters.max(1) as u32;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(" | {:.3} Melem/s", n as f64 / mean.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                " | {:.1} MiB/s",
                n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0)
            )
        }
        None => String::new(),
    };
    println!("{group}/{name}: mean {mean:.2?} (min {min:.2?}, max {max:.2?}, {iters} iters){rate}");
}

/// Entry point handed to `criterion_group!` functions.
pub struct Criterion {
    config: Config,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            config: Config::from_env(),
        }
    }
}

impl Criterion {
    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let config = self.config.clone();
        BenchmarkGroup {
            criterion: self,
            group_name: name.into(),
            throughput: None,
            config,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let group_name = String::new();
        let config = self.config.clone();
        let mut group = BenchmarkGroup {
            criterion: self,
            group_name,
            throughput: None,
            config,
        };
        group.bench_function(BenchmarkId::from(name), f);
        self
    }
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` running the given groups, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
