//! Offline vendored subset of the `rand` crate API.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the small slice of `rand` it actually uses: the
//! [`Rng`] core trait, the [`RngExt`] convenience extension
//! (`random`, `random_range`), [`SeedableRng`], a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), and the slice
//! helpers in [`seq`]. The statistical quality of xoshiro256++ is more
//! than adequate for the simulator and the distribution tests in this
//! workspace; the implementation is *not* intended to be
//! cryptographically secure or bit-compatible with upstream `rand`.

/// A source of randomness: the core trait, providing raw 64-bit output.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `Rng`.
pub trait Standard: Sized {
    /// Draw one uniform value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for i64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Uniform value in `[0, span)` by widening multiply (span > 0).
#[inline]
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Debiased multiply-shift (Lemire). The rejection loop virtually
    // never iterates for the small spans this workspace draws.
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (span as u128);
    let mut lo = m as u64;
    if lo < span {
        let t = span.wrapping_neg() % span;
        while lo < t {
            x = rng.next_u64();
            m = (x as u128) * (span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draw a uniform value of type `T`.
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw a uniform value from `range`.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' guidance.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (`choose`, `shuffle`).
pub mod seq {
    use super::{Rng, RngExt};

    /// Random element selection from indexable collections.
    pub trait IndexedRandom {
        /// The element type.
        type Item;
        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }

    /// In-place slice shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.random_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0..=5u64);
            assert!(y <= 5);
            let z = rng.random_range(1.5..2.5f64);
            assert!((1.5..2.5).contains(&z));
        }
        // Every value of a small range is reachable.
        let mut seen = [false; 14];
        for _ in 0..1_000 {
            seen[rng.random_range(3..17usize) - 3] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1, 2, 3];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
        let mut s: Vec<u32> = (0..100).collect();
        let orig = s.clone();
        s.shuffle(&mut rng);
        assert_ne!(s, orig, "shuffle of 100 elements must move something");
        s.sort_unstable();
        assert_eq!(s, orig, "shuffle is a permutation");
    }
}
