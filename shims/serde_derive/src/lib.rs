//! No-op `Serialize`/`Deserialize` derives for the offline `serde` shim.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` (and
//! `#[serde(...)]` field attributes) as forward-looking annotations; no
//! code path performs actual serialization, so the derives only need to
//! exist and swallow their attributes. The emitted impls reference the
//! marker traits of the sibling `serde` shim via blanket impls there, so
//! these derives expand to nothing at all.

use proc_macro::TokenStream;

/// Accept `#[derive(Serialize)]` and `#[serde(...)]` attributes; emit
/// nothing (the `serde` shim provides blanket impls).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept `#[derive(Deserialize)]` and `#[serde(...)]` attributes; emit
/// nothing (the `serde` shim provides blanket impls).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
