//! `Serialize`/`Deserialize` derives for the offline `serde` shim.
//!
//! `#[derive(Serialize)]` is a *real* derive: it walks the raw
//! `proc_macro::TokenStream` (no `syn`/`quote` in the offline image) and
//! emits an `impl ::serde::Serialize` that writes `serde_json`-shaped
//! output through the shim's concrete `Serializer`:
//!
//! * named-field structs → JSON objects (fields in declaration order,
//!   `#[serde(skip)]`-ed fields omitted);
//! * newtype structs → the inner value; other tuple structs → arrays;
//!   unit structs → `null`;
//! * enums → externally tagged: unit variants as `"Variant"`, newtype
//!   variants as `{"Variant": value}`, tuple variants as
//!   `{"Variant": [..]}`, struct variants as `{"Variant": {..}}`.
//!
//! Generic types are not supported (nothing in the workspace derives
//! `Serialize` on a generic type); hitting one produces a
//! `compile_error!` rather than silently wrong output.
//!
//! `#[derive(Deserialize)]` remains a no-op — the shim's `Deserialize`
//! is a blanket-implemented marker trait.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive a JSON `Serialize` impl (see crate docs for the mapping).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input).unwrap_or_else(|msg| {
        format!("compile_error!({msg:?});")
            .parse()
            .expect("compile_error! snippet parses")
    })
}

/// Accept `#[derive(Deserialize)]` and `#[serde(...)]` attributes; emit
/// nothing (the `serde` shim provides a blanket marker impl).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`, including expanded doc comments)
    // and the visibility qualifier.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // the `[...]` group
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1; // optional `(crate)` / `(super)` restriction
                if matches!(
                    tokens.get(i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    i += 1;
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim: derive(Serialize) does not support generic type `{name}`"
        ));
    }

    let body = match kind.as_str() {
        "struct" => expand_struct(&name, &tokens[i..])?,
        "enum" => expand_enum(&name, &tokens[i..])?,
        other => return Err(format!("derive(Serialize) on unsupported item `{other}`")),
    };

    let impl_src = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self, __s: &mut ::serde::Serializer) {{\n{body}\n}}\n}}"
    );
    impl_src
        .parse()
        .map_err(|e| format!("serde shim: generated impl failed to parse: {e:?}"))
}

/// One parsed field of a braced struct/variant body.
struct Field {
    name: String,
    skip: bool,
}

/// Parse `name: Type, ...` (with per-field attributes and visibility)
/// out of a braced group's tokens.
fn parse_named_fields(group: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Field attributes; note `#[serde(skip)]`.
        let mut skip = false;
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        skip |= attr_is_serde_skip(g.stream());
                        i += 1;
                    }
                }
                _ => break,
            }
        }
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(
                    tokens.get(i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    i += 1;
                }
            }
            _ => {}
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break, // trailing comma
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after `{name}`, found {other:?}")),
        }
        // Consume the type: everything until a `,` at angle-bracket
        // depth 0. Parenthesized/bracketed types are single groups, so
        // only `<`/`>` need balancing (each `>` of a `>>` is its own
        // punct token).
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // the `,` (or one past the end)
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

/// Does `#[<attr tokens>]` spell `serde(... skip ...)`?
fn attr_is_serde_skip(attr: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(t, TokenTree::Ident(ref id) if id.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Count the comma-separated fields of a tuple struct/variant
/// parenthesized body (commas inside nested groups are already hidden
/// by tokenization; only `<`/`>` depth needs tracking).
fn count_tuple_fields(group: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut fields = 1;
    let mut saw_trailing_comma = false;
    for tok in &tokens {
        saw_trailing_comma = false;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    fields += 1;
                    saw_trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if saw_trailing_comma {
        fields -= 1;
    }
    fields
}

fn expand_struct(name: &str, rest: &[TokenTree]) -> Result<String, String> {
    match rest.first() {
        // Named fields: `struct S { .. }` → JSON object.
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = parse_named_fields(g.stream())?;
            let mut body = String::from("let mut __m = __s.begin_map();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                body.push_str(&format!("__m.entry({:?}, &self.{});\n", f.name, f.name));
            }
            body.push_str("__m.end();");
            Ok(body)
        }
        // Tuple struct: newtype → inner value; wider → array.
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let n = count_tuple_fields(g.stream());
            match n {
                0 => Ok("__s.null();".to_string()),
                1 => Ok("::serde::Serialize::serialize(&self.0, __s);".to_string()),
                n => {
                    let mut body = String::from("let mut __q = __s.begin_seq();\n");
                    for i in 0..n {
                        body.push_str(&format!("__q.element(&self.{i});\n"));
                    }
                    body.push_str("__q.end();");
                    Ok(body)
                }
            }
        }
        // Unit struct.
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok("__s.null();".to_string()),
        other => Err(format!("struct `{name}`: unexpected body {other:?}")),
    }
}

fn expand_enum(name: &str, rest: &[TokenTree]) -> Result<String, String> {
    let body_group = match rest.first() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => {
            return Err(format!(
                "enum `{name}`: expected braced body, found {other:?}"
            ))
        }
    };
    let tokens: Vec<TokenTree> = body_group.into_iter().collect();
    let mut arms = String::new();
    let mut i = 0;
    while i < tokens.len() {
        // Variant attributes (none of ours matter here).
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                i += 1;
            }
        }
        let variant = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("enum `{name}`: expected variant, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            // Struct variant: `{ a: T, b: U }` → {"Variant": {"a":..}}
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                let pat: Vec<String> = fields.iter().map(|f| format!("ref {}", f.name)).collect();
                let mut arm = format!(
                    "{name}::{variant} {{ {} }} => {{\n\
                     let mut __m = __s.begin_map();\n\
                     {{\nlet __vs = __m.key({variant:?});\nlet mut __im = __vs.begin_map();\n",
                    pat.join(", ")
                );
                for f in fields.iter().filter(|f| !f.skip) {
                    arm.push_str(&format!("__im.entry({:?}, {});\n", f.name, f.name));
                }
                arm.push_str("__im.end();\n}\n__m.end();\n}\n");
                arms.push_str(&arm);
                i += 1;
            }
            // Tuple variant: newtype → {"Variant": v}; wider → array.
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                let binds: Vec<String> = (0..n).map(|k| format!("ref __f{k}")).collect();
                let mut arm = format!("{name}::{variant}({}) => {{\n", binds.join(", "));
                match n {
                    0 => arm.push_str(&format!("__s.str_({variant:?});\n")),
                    1 => arm.push_str(&format!(
                        "let mut __m = __s.begin_map();\n\
                         __m.entry({variant:?}, __f0);\n__m.end();\n"
                    )),
                    n => {
                        arm.push_str(&format!(
                            "let mut __m = __s.begin_map();\n\
                             {{\nlet __vs = __m.key({variant:?});\n\
                             let mut __q = __vs.begin_seq();\n"
                        ));
                        for k in 0..n {
                            arm.push_str(&format!("__q.element(__f{k});\n"));
                        }
                        arm.push_str("__q.end();\n}\n__m.end();\n");
                    }
                }
                arm.push_str("}\n");
                arms.push_str(&arm);
                i += 1;
            }
            // Unit variant (possibly with a discriminant, not used here).
            _ => {
                arms.push_str(&format!("{name}::{variant} => __s.str_({variant:?}),\n"));
            }
        }
        // Skip to the comma separating variants.
        while let Some(tok) = tokens.get(i) {
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
            i += 1;
        }
        i += 1;
    }
    Ok(format!("match self {{\n{arms}}}"))
}
