//! Offline vendored subset of `parking_lot`: a non-poisoning [`Mutex`]
//! and [`RwLock`] backed by `std::sync`. Matches the parking_lot calling
//! convention (`lock()`/`read()`/`write()` return guards directly); a
//! poisoned std lock (a panic while held) is transparently recovered,
//! which is parking_lot's behavior too.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex with the parking_lot API shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, returning the guard directly.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock with the parking_lot API shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }
}
