//! Offline vendored subset of the `bytes` crate: [`Bytes`], [`BytesMut`],
//! and the [`Buf`]/[`BufMut`] cursor traits, all backed by `Vec<u8>`.
//! The wire codec only needs big-endian put/get of fixed-width integers,
//! stream-style framing (`extend_from_slice` / `split_to`), and cheap
//! clones of frozen buffers — no refcounted sub-slicing.

use std::ops::{Deref, DerefMut, Index, IndexMut};
use std::slice::SliceIndex;
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::new(data.to_vec()))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::new(v))
    }
}

/// A growable byte buffer with big-endian put methods.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Append `data`.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    /// Drop all content.
    pub fn clear(&mut self) {
        self.0.clear();
    }

    /// Remove and return the first `at` bytes.
    ///
    /// # Panics
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.0.len());
        let rest = self.0.split_off(at);
        BytesMut(std::mem::replace(&mut self.0, rest))
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(Arc::new(self.0))
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl<I: SliceIndex<[u8]>> Index<I> for BytesMut {
    type Output = I::Output;
    #[inline]
    fn index(&self, index: I) -> &I::Output {
        &self.0[index]
    }
}

impl<I: SliceIndex<[u8]>> IndexMut<I> for BytesMut {
    #[inline]
    fn index_mut(&mut self, index: I) -> &mut I::Output {
        &mut self.0[index]
    }
}

/// Read cursor over a byte source. All integer reads are big-endian and
/// panic when the source is exhausted (callers check [`Buf::remaining`]).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Take the next `n` bytes.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }
    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take_bytes(2).try_into().unwrap())
    }
    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_bytes(4).try_into().unwrap())
    }
    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_bytes(8).try_into().unwrap())
    }
    /// Read a big-endian unsigned integer of `n` bytes (`n <= 8`).
    fn get_uint(&mut self, n: usize) -> u64 {
        assert!(n <= 8);
        let mut out = 0u64;
        for &b in self.take_bytes(n) {
            out = (out << 8) | u64::from(b);
        }
        out
    }
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn take_bytes(&mut self, n: usize) -> &[u8] {
        let (head, rest) = self.split_at(n);
        *self = rest;
        head
    }
}

/// Write cursor: big-endian integer appends.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, data: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append the low `n` bytes of `v`, big-endian (`n <= 8`).
    fn put_uint(&mut self, v: u64, n: usize) {
        assert!(n <= 8);
        self.put_slice(&v.to_be_bytes()[8 - n..]);
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u32(0xdead_beef);
        b.put_u16(7);
        b.put_u8(9);
        b.put_uint(0x0102_0304_0506, 6);
        b.put_u64(u64::MAX);
        let frozen = b.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u32(), 0xdead_beef);
        assert_eq!(cur.get_u16(), 7);
        assert_eq!(cur.get_u8(), 9);
        assert_eq!(cur.get_uint(6), 0x0102_0304_0506);
        assert_eq!(cur.get_u64(), u64::MAX);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn split_to_frames() {
        let mut b = BytesMut::new();
        b.extend_from_slice(&[1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn backpatch_via_index_mut() {
        let mut b = BytesMut::new();
        b.put_u32(0);
        b[0..4].copy_from_slice(&9u32.to_be_bytes());
        let mut cur: &[u8] = &b;
        assert_eq!(cur.get_u32(), 9);
    }
}
