//! Offline vendored `serde` facade.
//!
//! The workspace annotates its data types with
//! `#[derive(Serialize, Deserialize)]` so they are ready for a real
//! serialization backend, but no code path serializes today and the build
//! environment has no registry access. This facade provides the two trait
//! names as blanket-implemented markers plus the no-op derives from
//! `serde_derive`, letting the annotations compile unchanged.

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize` (blanket-implemented).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize` (blanket-implemented).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
