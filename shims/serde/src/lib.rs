//! Offline vendored `serde` facade — now a *functional* minimal
//! serialization framework.
//!
//! The workspace annotates its data types with
//! `#[derive(Serialize, Deserialize)]`. Until PR 6 the annotations were
//! no-ops (marker traits + empty derives); the verdict store and the
//! daemon's `--json` log mode need real JSON export, so [`Serialize`] is
//! now a real trait driven by a concrete JSON [`Serializer`], and the
//! sibling `serde_derive` crate generates real impls for structs and
//! enums (honoring `#[serde(skip)]` on fields). The output follows
//! `serde_json`'s conventions:
//!
//! * structs → objects, newtype structs → their inner value;
//! * unit enum variants → `"Variant"`, data-carrying variants →
//!   `{"Variant": ...}` (externally tagged);
//! * `Option` → value or `null`; non-finite floats → `null`;
//! * `Duration` → `{"secs": s, "nanos": n}`;
//! * maps → objects with `Display`-formatted keys, emitted in sorted
//!   key order so output is deterministic across runs.
//!
//! `Deserialize` remains a blanket-implemented marker: no code path
//! parses JSON today, and keeping the marker lets the existing
//! `#[derive(Deserialize)]` annotations compile unchanged.

// The derive macros and the traits below share names, exactly as in
// real serde (macros and traits live in different namespaces):
// `use serde::Serialize` imports both.
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt::Display;
use std::time::Duration;

/// Marker standing in for `serde::Deserialize` (blanket-implemented).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// A JSON writer. All serialization in the workspace funnels through
/// this one concrete type (the offline build has no need for the
/// generic `Serializer` trait machinery of real serde).
#[derive(Debug, Default)]
pub struct Serializer {
    out: String,
}

impl Serializer {
    /// Fresh serializer with an empty output buffer.
    pub fn new() -> Self {
        Serializer { out: String::new() }
    }

    /// The accumulated JSON text.
    pub fn into_string(self) -> String {
        self.out
    }

    /// Write `null`.
    pub fn null(&mut self) {
        self.out.push_str("null");
    }

    /// Write a boolean.
    pub fn bool_(&mut self, v: bool) {
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Write an unsigned integer.
    pub fn u64_(&mut self, v: u64) {
        let mut buf = [0u8; 20];
        let mut i = buf.len();
        let mut n = v;
        loop {
            i -= 1;
            buf[i] = b'0' + (n % 10) as u8;
            n /= 10;
            if n == 0 {
                break;
            }
        }
        self.out
            .push_str(std::str::from_utf8(&buf[i..]).expect("digits are ASCII"));
    }

    /// Write a signed integer.
    pub fn i64_(&mut self, v: i64) {
        if v < 0 {
            self.out.push('-');
            self.u64_(v.unsigned_abs());
        } else {
            self.u64_(v as u64);
        }
    }

    /// Write a float (`null` for NaN/±∞, which JSON cannot represent).
    pub fn f64_(&mut self, v: f64) {
        if v.is_finite() {
            // Rust's shortest-roundtrip Display for floats is valid JSON.
            use std::fmt::Write;
            write!(self.out, "{v}").expect("writing to a String cannot fail");
        } else {
            self.null();
        }
    }

    /// Write an escaped JSON string.
    pub fn str_(&mut self, v: &str) {
        self.out.push('"');
        for c in v.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    use std::fmt::Write;
                    write!(self.out, "\\u{:04x}", c as u32).expect("write to String");
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// Start a JSON object; emit entries through the guard, then call
    /// [`MapSer::end`].
    pub fn begin_map(&mut self) -> MapSer<'_> {
        self.out.push('{');
        MapSer {
            s: self,
            first: true,
        }
    }

    /// Start a JSON array; emit elements through the guard, then call
    /// [`SeqSer::end`].
    pub fn begin_seq(&mut self) -> SeqSer<'_> {
        self.out.push('[');
        SeqSer {
            s: self,
            first: true,
        }
    }
}

/// In-progress JSON object.
pub struct MapSer<'a> {
    s: &'a mut Serializer,
    first: bool,
}

impl<'a> MapSer<'a> {
    /// Write `"key":` (with any needed separator) and return the
    /// serializer positioned for the value — the hook for nested
    /// containers built by derive-generated code.
    pub fn key(&mut self, key: &str) -> &mut Serializer {
        if !self.first {
            self.s.out.push(',');
        }
        self.first = false;
        self.s.str_(key);
        self.s.out.push(':');
        self.s
    }

    /// Write one `"key": value` entry.
    pub fn entry<T: Serialize + ?Sized>(&mut self, key: &str, value: &T) {
        value.serialize(self.key(key));
    }

    /// Close the object.
    pub fn end(self) {
        self.s.out.push('}');
    }
}

/// In-progress JSON array.
pub struct SeqSer<'a> {
    s: &'a mut Serializer,
    first: bool,
}

impl<'a> SeqSer<'a> {
    /// Write one element.
    pub fn element<T: Serialize + ?Sized>(&mut self, value: &T) {
        if !self.first {
            self.s.out.push(',');
        }
        self.first = false;
        value.serialize(self.s);
    }

    /// Close the array.
    pub fn end(self) {
        self.s.out.push(']');
    }
}

/// A type serializable to JSON through a [`Serializer`]. Derive it with
/// `#[derive(Serialize)]` or implement manually for bespoke layouts.
pub trait Serialize {
    /// Write `self` as one JSON value.
    fn serialize(&self, s: &mut Serializer);
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut Serializer) {
                s.u64_(*self as u64);
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut Serializer) {
                s.i64_(*self as i64);
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize(&self, s: &mut Serializer) {
        s.bool_(*self);
    }
}

impl Serialize for f32 {
    fn serialize(&self, s: &mut Serializer) {
        s.f64_(f64::from(*self));
    }
}

impl Serialize for f64 {
    fn serialize(&self, s: &mut Serializer) {
        s.f64_(*self);
    }
}

impl Serialize for char {
    fn serialize(&self, s: &mut Serializer) {
        s.str_(&self.to_string());
    }
}

impl Serialize for str {
    fn serialize(&self, s: &mut Serializer) {
        s.str_(self);
    }
}

impl Serialize for String {
    fn serialize(&self, s: &mut Serializer) {
        s.str_(self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, s: &mut Serializer) {
        (**self).serialize(s);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self, s: &mut Serializer) {
        (**self).serialize(s);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, s: &mut Serializer) {
        match self {
            Some(v) => v.serialize(s),
            None => s.null(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, s: &mut Serializer) {
        let mut seq = s.begin_seq();
        for v in self {
            seq.element(v);
        }
        seq.end();
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, s: &mut Serializer) {
        self.as_slice().serialize(s);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, s: &mut Serializer) {
        self.as_slice().serialize(s);
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self, s: &mut Serializer) {
                let mut seq = s.begin_seq();
                $(seq.element(&self.$n);)+
                seq.end();
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Maps serialize as objects with `Display`-formatted keys. `HashMap`
/// entries are sorted by key first so output is deterministic.
impl<K: Display, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self, s: &mut Serializer) {
        let mut entries: Vec<(String, &V)> = self.iter().map(|(k, v)| (k.to_string(), v)).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut m = s.begin_map();
        for (k, v) in entries {
            m.entry(&k, v);
        }
        m.end();
    }
}

impl<K: Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self, s: &mut Serializer) {
        let mut m = s.begin_map();
        for (k, v) in self {
            m.entry(&k.to_string(), v);
        }
        m.end();
    }
}

impl Serialize for Duration {
    fn serialize(&self, s: &mut Serializer) {
        let mut m = s.begin_map();
        m.entry("secs", &self.as_secs());
        m.entry("nanos", &self.subsec_nanos());
        m.end();
    }
}

impl Serialize for () {
    fn serialize(&self, s: &mut Serializer) {
        s.null();
    }
}

/// JSON entry points, mirroring `serde_json`'s.
pub mod json {
    use super::{Serialize, Serializer};

    /// Serialize `value` to a compact JSON string.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut s = Serializer::new();
        value.serialize(&mut s);
        s.into_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(json::to_string(&true), "true");
        assert_eq!(json::to_string(&42u32), "42");
        assert_eq!(json::to_string(&-7i64), "-7");
        assert_eq!(json::to_string(&1.5f64), "1.5");
        assert_eq!(json::to_string(&f64::NAN), "null");
        assert_eq!(json::to_string("a\"b\\c\n"), r#""a\"b\\c\n""#);
        assert_eq!(json::to_string(&Some(3u8)), "3");
        assert_eq!(json::to_string(&Option::<u8>::None), "null");
    }

    #[test]
    fn containers() {
        assert_eq!(json::to_string(&vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(json::to_string(&[None, Some(9u64)]), "[null,9]");
        assert_eq!(json::to_string(&(1u32, "x")), r#"[1,"x"]"#);
        let mut m = BTreeMap::new();
        m.insert("b", 2u8);
        m.insert("a", 1u8);
        assert_eq!(json::to_string(&m), r#"{"a":1,"b":2}"#);
        assert_eq!(
            json::to_string(&Duration::from_millis(1500)),
            r#"{"secs":1,"nanos":500000000}"#
        );
    }
}
