//! Chaos soak: the full daemon pipeline — per-host agents exporting
//! over real TCP sockets to the reactor collector, epoch windowing,
//! sharded warm-started inference, durable verdict store — driven
//! through a seeded randomized fault schedule
//! ([`flock::netsim::chaos`]): agent crashes with reconnect-and-resend,
//! stalled connections, corrupt / torn / duplicated / reordered wire
//! frames, clock-skewed epoch stamps, a stalled collector reactor
//! shard, panicking inference shards, and failing store appends.
//!
//! The contract under chaos:
//!
//! * no fault escapes its containment boundary (the test completing is
//!   the no-panic/no-deadlock proof — every wait is deadlined);
//! * epochs whose faults all preserve the evidence stream produce
//!   verdicts **bit-identical** to a chaos-free run over the same
//!   flows;
//! * epochs with evidence-altering faults are **labeled degraded** with
//!   typed reasons, never silently wrong;
//! * the decoder/collector counters account for every wire fault;
//! * a failed store append degrades the store to ring-only with an ops
//!   alert while every query keeps serving;
//! * within 2 epochs of the chaos window closing, verdicts are healthy
//!   again with P = R = 1.0 against the live network fault.
//!
//! The schedule seed comes from `FLOCK_CHAOS_SEED` (fixed default, so
//! CI is reproducible; set it to fuzz new schedules locally).

use flock::netsim::chaos::{ChaosConfig, ChaosSchedule, FaultKind, WireMangler};
use flock::prelude::*;
use flock::store::AppendFault;
use flock::stream::{ChaosHook, ShardChaos};
use flock::telemetry::agent::{AgentConfig, AgentCore, Exporter, FlowSample};
use flock::telemetry::{CollectorConfig, ReactorHook};
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const EPOCHS: u64 = 12;
const EPOCH_MS: u64 = 1_000;
const FLOWS_PER_EPOCH: usize = 2_000;
const CHAOS: ChaosConfig = ChaosConfig {
    start_epoch: 2,
    end_epoch: 8,
    faults_per_epoch: 3,
    victims: 64,
    max_magnitude_ms: 60,
};

fn chaos_seed() -> u64 {
    std::env::var("FLOCK_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xF10C_5EED)
}

fn pods3() -> Topology {
    flock::topology::clos::three_tier(ClosParams {
        pods: 3,
        tors_per_pod: 2,
        aggs_per_pod: 2,
        spines_per_plane: 2,
        hosts_per_tor: 3,
    })
}

/// Pre-generate every epoch's flows once so the baseline and chaos runs
/// see the identical network: a persistent gray link fault under
/// uniform traffic.
fn generate_epochs(topo: &Topology, scenario: &DynamicScenario) -> Vec<Vec<MonitoredFlow>> {
    let router = Router::new(topo);
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    (0..EPOCHS)
        .map(|e| {
            let snapshot = scenario.scenario_at(e);
            let demands = flock::netsim::traffic::generate_demands(
                topo,
                &TrafficConfig::paper(FLOWS_PER_EPOCH, TrafficPattern::Uniform),
                &mut rng,
            );
            flock::netsim::flowsim::simulate_flows(
                topo,
                &router,
                &snapshot,
                &demands,
                &FlowSimConfig::default(),
                &mut rng,
            )
        })
        .collect()
}

/// Block until the collector has gone quiet: no registered connections
/// and a stable pending count. Deadlined, so a wedged reactor fails the
/// test instead of hanging it.
fn await_quiesce(collector: &Collector) {
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut last = usize::MAX;
    let mut stable = 0;
    while Instant::now() < deadline {
        let pending = collector.pending();
        let active = collector.stats().snapshot().active_connections;
        if active == 0 && pending == last {
            stable += 1;
            if stable >= 5 {
                return;
            }
        } else {
            stable = 0;
        }
        last = pending;
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("collector did not quiesce within its deadline");
}

/// Sort every drained bucket by full record content. Reactor shards
/// interleave connections nondeterministically; canonical order makes
/// "same record multiset" imply "bit-identical verdicts" (arena
/// interning and f64 accumulation then run in the same order).
fn canonicalize(batch: &mut DrainBatch) {
    let key = |r: &StampedRecord| {
        (
            r.agent_id,
            r.export_ms,
            r.record.key.src,
            r.record.key.dst,
            r.record.key.src_port,
            r.record.key.dst_port,
            r.record.key.proto,
            r.record.stats.packets,
            r.record.stats.retransmissions,
            r.record.stats.bytes,
        )
    };
    for (_, bucket) in &mut batch.buckets {
        bucket.sort_by_key(key);
    }
    batch.unhinted.sort_by_key(key);
}

struct RunOutcome {
    reports: BTreeMap<u64, EpochReport>,
    collector_stats: StatsSnapshot,
    durability: Durability,
    ops_alerts: usize,
    history_epochs: Vec<u64>,
    agents_tracked: usize,
    rejected_records: u64,
}

/// Drive the full socket pipeline over the pre-generated flows, with
/// the fault schedule applied when one is given.
fn run_pipeline(
    topo: &Topology,
    epochs: &[Vec<MonitoredFlow>],
    faulty: LinkId,
    schedule: Option<&ChaosSchedule>,
    store_path: &PathBuf,
    pipelined: bool,
) -> RunOutcome {
    // Reactor-stall executor: the hook sleeps once per arming, on the
    // targeted shard only.
    let stall_shard = Arc::new(AtomicU64::new(u64::MAX));
    let stall_ms = Arc::new(AtomicU64::new(0));
    let hook = {
        let (shard, ms) = (stall_shard.clone(), stall_ms.clone());
        ReactorHook::new(move |idx| {
            if idx as u64 == shard.load(Ordering::Acquire) {
                let dur = ms.swap(0, Ordering::AcqRel);
                if dur > 0 {
                    std::thread::sleep(Duration::from_millis(dur.min(100)));
                }
            }
        })
    };
    let collector = Collector::bind_with(
        "127.0.0.1:0".parse().unwrap(),
        CollectorConfig {
            shards: 2,
            stall_hook: Some(hook),
            ..CollectorConfig::default()
        },
    )
    .unwrap();

    // Shard-panic executor: victims map onto the pod shards.
    let chaos_hook = schedule.map(|s| {
        let sched = s.clone();
        ChaosHook::new(move |label: &str, epoch: u64| {
            sched.faults_at(epoch).iter().find_map(|f| {
                (f.kind == FaultKind::ShardPanic && label == format!("pod{}", f.victim % 3))
                    .then_some(ShardChaos::Panic)
            })
        })
    });
    let mut pipeline = StreamPipeline::new(
        topo,
        StreamConfig {
            epoch: EpochConfig::tumbling(EPOCH_MS),
            kinds: vec![InputKind::A2, InputKind::P],
            mode: AnalysisMode::PerPacket,
            warm_start: true,
            shard_by_pod: true,
            epoch_deadline: Some(Duration::from_secs(5)),
            chaos: chaos_hook,
            pipelined,
            ..StreamConfig::paper_default()
        },
    );
    let mut store = VerdictStore::create(StoreConfig::default(), store_path).unwrap();
    let mut mangler = WireMangler::new(chaos_seed() ^ 0x5A5A);
    let mut hosts: Vec<NodeId> = topo.hosts().to_vec();
    hosts.sort();

    let mut reports: BTreeMap<u64, EpochReport> = BTreeMap::new();
    let ingest = |store: &mut VerdictStore,
                  reports: &mut BTreeMap<u64, EpochReport>,
                  report: EpochReport| {
        store.ingest(&report);
        reports.insert(report.epoch_index, report);
    };

    for epoch in 0..EPOCHS {
        let faults = schedule.map(|s| s.faults_at(epoch)).unwrap_or(&[]);
        // Arm the epoch's collector stall (if any) before the exports.
        for f in faults {
            if f.kind == FaultKind::CollectorStall {
                stall_shard.store(f.victim as u64 % 2, Ordering::Release);
                stall_ms.store(f.magnitude_ms, Ordering::Release);
            }
        }
        // One store-append failure per scheduled fault; ring-only is
        // sticky afterwards by contract.
        if faults.iter().any(|f| f.kind == FaultKind::StoreAppendFail) {
            store.inject_append_fault(AppendFault::Error(std::io::ErrorKind::Other));
        }

        for (idx, host) in hosts.iter().enumerate() {
            let mine: Vec<&MonitoredFlow> = epochs[epoch as usize]
                .iter()
                .filter(|f| f.key.src == *host)
                .collect();
            // Small chunks: several frames per export, so reordering
            // permutes something and a tear lands mid-stream.
            let mut agent = AgentCore::new(AgentConfig {
                agent_id: host.0,
                epoch_hint_ms: Some(EPOCH_MS),
                max_records_per_message: 24,
                ..Default::default()
            });
            for f in &mine {
                agent.observe(FlowSample {
                    key: f.key,
                    packets: f.stats.packets,
                    retransmissions: f.stats.retransmissions,
                    bytes: f.stats.bytes,
                    rtt_us: Some(f.stats.rtt_max_us),
                    path: (f.stats.retransmissions > 0).then(|| f.true_path.clone()),
                    class: flock::telemetry::TrafficClass::Passive,
                });
            }
            let records = agent.export();
            let mut export_ms = epoch * EPOCH_MS + EPOCH_MS / 2;
            let my_faults: Vec<&flock::netsim::chaos::ChaosFault> = faults
                .iter()
                .filter(|f| f.victim as usize % hosts.len() == idx)
                .collect();
            // Clock skew re-stamps the export before encoding; a skew
            // past the epoch boundary lands the records in the *next*
            // epoch's bucket (buffered, not lost).
            for f in &my_faults {
                if f.kind == FaultKind::ClockSkew {
                    export_ms =
                        flock::netsim::chaos::skew_stamp(export_ms, EPOCH_MS / 2 + f.magnitude_ms);
                }
            }
            let mut frames: Vec<Vec<u8>> = agent
                .encode_export(export_ms, &records)
                .iter()
                .map(|b| b.to_vec())
                .collect();
            let mut crash = false;
            let mut stall = 0u64;
            for f in &my_faults {
                match f.kind {
                    FaultKind::AgentCrash => crash = true,
                    FaultKind::ConnStall => stall = f.magnitude_ms,
                    k => mangler.apply(k, &mut frames),
                }
            }
            if stall > 0 {
                std::thread::sleep(Duration::from_millis(stall.min(60)));
            }
            if crash {
                // Crash mid-frame, then restart and resend everything:
                // at-least-once delivery, so the prefix arrives twice.
                let half = frames.len() / 2;
                let mut dying = Exporter::connect(collector.local_addr()).unwrap();
                for m in &frames[..half] {
                    dying.send(m).unwrap();
                }
                if let Some(next) = frames.get(half) {
                    let _ = dying.send(&next[..next.len() / 2]);
                }
                drop(dying);
            }
            let mut exporter = Exporter::connect(collector.local_addr()).unwrap();
            for m in &frames {
                exporter.send(m).unwrap();
            }
            exporter.finish().unwrap();
        }

        await_quiesce(&collector);
        let mut batch = collector.drain_buckets();
        canonicalize(&mut batch);
        pipeline.ingest_bucketed(batch);
        for report in pipeline.poll((epoch + 1) * EPOCH_MS) {
            ingest(&mut store, &mut reports, report);
        }
    }
    for report in pipeline.drain() {
        ingest(&mut store, &mut reports, report);
    }

    let comp = flock::topology::Component::Link(faulty);
    let outcome = RunOutcome {
        collector_stats: collector.stats().snapshot(),
        durability: store.durability(),
        ops_alerts: store.ops_alerts().len(),
        history_epochs: store.history(comp).iter().map(|s| s.epoch).collect(),
        agents_tracked: collector.liveness().len(),
        rejected_records: pipeline.rejected_records(),
        reports,
    };
    collector.shutdown();
    outcome
}

#[test]
fn chaos_soak_contains_every_fault_and_recovers() {
    let seed = chaos_seed();
    let schedule = ChaosSchedule::generate(CHAOS, seed);
    let kinds = schedule.kinds();
    assert!(
        kinds.len() >= 6,
        "schedule (seed {seed:#x}) must span >= 6 fault kinds, got {kinds:?}"
    );

    let topo = pods3();
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let mut scenario = DynamicScenario::noise_only(&topo, 1e-4, &mut rng);
    let faulty = topo.fabric_links()[11];
    scenario.events.push(FaultEvent {
        link: faulty,
        drop_rate: 0.02,
        appear_epoch: 0,
        heal_epoch: None,
    });
    let epochs = generate_epochs(&topo, &scenario);

    let base_path =
        std::env::temp_dir().join(format!("flock_soak_base_{}.seg", std::process::id()));
    let chaos_path =
        std::env::temp_dir().join(format!("flock_soak_chaos_{}.seg", std::process::id()));
    let _ = std::fs::remove_file(&base_path);
    let _ = std::fs::remove_file(&chaos_path);

    // The chaos leg runs pipelined (overlapping epochs on the shard
    // executor) against a sequential baseline: the bit-identity checks
    // below then also prove the pipelined path exact under wire chaos.
    let baseline = run_pipeline(&topo, &epochs, faulty, None, &base_path, false);
    let chaos = run_pipeline(&topo, &epochs, faulty, Some(&schedule), &chaos_path, true);

    // Both runs emitted every epoch (nothing hung, nothing was eaten).
    assert_eq!(baseline.reports.len() as u64, EPOCHS, "baseline epochs");
    for e in 0..EPOCHS {
        assert!(chaos.reports.contains_key(&e), "chaos run lost epoch {e}");
    }

    // The baseline saw no faults: healthy everywhere, clean counters,
    // durable store, exact localization once the warm-up epoch passed.
    for (e, r) in &baseline.reports {
        assert!(!r.health.is_degraded(), "baseline epoch {e} degraded");
    }
    assert_eq!(baseline.collector_stats.decode_errors, 0);
    assert_eq!(baseline.collector_stats.frames_quarantined, 0);
    assert_eq!(baseline.durability, Durability::Durable);
    assert_eq!(baseline.rejected_records, 0);

    let truth_of = |e: u64| scenario.scenario_at(e).truth;
    for (e, r) in &baseline.reports {
        let pr = flock::core::evaluate(&topo, &r.result.predicted, &truth_of(*e));
        assert_eq!(
            (pr.precision, pr.recall),
            (1.0, 1.0),
            "baseline epoch {e} must localize exactly"
        );
    }

    // Bit-identity: every epoch whose fault history is entirely
    // evidence-preserving must match the baseline to the bit — same
    // components, same f64 scores.
    let mut identical = 0;
    for e in 0..EPOCHS {
        if !schedule.bit_identity_epoch(e) {
            continue;
        }
        let (b, c) = (&baseline.reports[&e], &chaos.reports[&e]);
        assert_eq!(
            b.result.predicted, c.result.predicted,
            "epoch {e}: evidence-preserving chaos changed the verdict"
        );
        assert_eq!(
            b.result.scores, c.result.scores,
            "epoch {e}: evidence-preserving chaos changed the scores"
        );
        identical += 1;
    }
    assert!(
        identical >= CHAOS.start_epoch,
        "at least the pre-chaos epochs must be held to bit-identity"
    );

    // Every epoch that lost a shard to an injected panic is labeled
    // degraded with the typed reason naming that shard.
    let mut panic_epochs = 0;
    for e in CHAOS.start_epoch..CHAOS.end_epoch {
        let victims: Vec<String> = schedule
            .faults_at(e)
            .iter()
            .filter(|f| f.kind == FaultKind::ShardPanic)
            .map(|f| format!("pod{}", f.victim % 3))
            .collect();
        if victims.is_empty() {
            continue;
        }
        panic_epochs += 1;
        let r = &chaos.reports[&e];
        assert!(
            r.health.is_degraded(),
            "epoch {e} lost {victims:?} silently"
        );
        let reasons: Vec<String> = r.health.reasons().iter().map(|x| x.to_string()).collect();
        for v in &victims {
            assert!(
                reasons.contains(&format!("shard-panicked:{v}")),
                "epoch {e}: reasons {reasons:?} must name {v}"
            );
        }
        assert!(
            r.health.evidence_coverage() < 1.0,
            "epoch {e}: lost evidence must lower coverage"
        );
        assert!(!r.failures.is_empty(), "epoch {e}: failures must be typed");
    }
    assert!(panic_epochs > 0, "schedule must exercise shard panics");

    // Wire-level faults are visible in the typed collector counters,
    // never a silent connection teardown.
    let s = &chaos.collector_stats;
    if kinds.contains(&FaultKind::WireCorrupt) || kinds.contains(&FaultKind::WireTear) {
        let accounted = s.frames_quarantined
            + s.resyncs
            + s.decode_truncated
            + s.decode_bad_magic
            + s.decode_length_mismatch
            + s.decode_bad_version
            + chaos.rejected_records;
        assert!(
            accounted > 0,
            "wire mangling must surface in typed counters: {s:?}"
        );
    }
    assert_eq!(
        chaos.agents_tracked,
        topo.hosts().len(),
        "liveness must track every agent through crashes and reconnects"
    );

    // The scheduled store-append failure degraded the store to
    // ring-only with an ops alert — and every epoch stayed queryable.
    if kinds.contains(&FaultKind::StoreAppendFail) {
        assert_eq!(chaos.durability, Durability::RingOnly);
        assert!(chaos.ops_alerts >= 1, "degradation must raise an ops alert");
    }
    // An epoch whose owning shard panicked may legitimately miss the
    // blame (that is what "degraded" means) — but every epoch outside
    // the chaos window must be present and queryable.
    for e in (0..CHAOS.start_epoch).chain(CHAOS.end_epoch..EPOCHS) {
        assert!(
            chaos.history_epochs.contains(&e),
            "blame history must serve epoch {e} under chaos (got {:?})",
            chaos.history_epochs
        );
    }

    // Recovery: within 2 epochs of the chaos window closing, verdicts
    // are healthy and exact again.
    for e in CHAOS.end_epoch + 2..EPOCHS {
        let r = &chaos.reports[&e];
        assert!(
            !r.health.is_degraded(),
            "epoch {e}: health must recover after chaos stops, got {:?}",
            r.health
        );
        let pr = flock::core::evaluate(&topo, &r.result.predicted, &truth_of(e));
        assert_eq!(
            (pr.precision, pr.recall),
            (1.0, 1.0),
            "epoch {e}: P=R must recover to 1.0 after chaos stops"
        );
    }

    let _ = std::fs::remove_file(&base_path);
    let _ = std::fs::remove_file(&chaos_path);
}
