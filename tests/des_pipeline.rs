//! Integration: packet-level DES traces through inference — the testbed
//! scenarios of §7.4/§7.5 end to end.

use flock::netsim::des::{simulate_des, Flap, WredParams};
use flock::netsim::traffic::generate_demands;
use flock::prelude::*;
use rand::SeedableRng;

fn testbed() -> Topology {
    flock::topology::clos::leaf_spine(LeafSpineParams::testbed())
}

#[test]
fn wred_misconfiguration_is_localized_from_tcp_behaviour() {
    let topo = testbed();
    let router = Router::new(&topo);
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let bad = topo.fabric_links()[5];
    let faults = DesFaults {
        wred: vec![(
            bad,
            WredParams {
                threshold: 0,
                drop_prob: 0.02,
            },
        )],
        ..Default::default()
    };
    let demands = generate_demands(
        &topo,
        &TrafficConfig::paper(400, TrafficPattern::Uniform),
        &mut rng,
    );
    let flows = simulate_des(
        &topo,
        &router,
        &DesConfig::default(),
        &faults,
        &demands,
        &mut rng,
    );
    let obs = flock::telemetry::input::assemble(
        &topo,
        &router,
        &flows,
        &[InputKind::Int],
        AnalysisMode::PerPacket,
    );
    let result = FlockGreedy::default().localize(&topo, &obs);
    let truth = GroundTruth {
        failed_links: vec![bad],
        failed_devices: vec![],
    };
    let pr = evaluate(&topo, &result.predicted, &truth);
    assert!(
        pr.recall > 0.0,
        "WRED faults must be localized: blamed {:?}, truth {bad:?}",
        result.predicted
    );
}

#[test]
fn link_flap_is_localized_by_per_flow_analysis_only() {
    let topo = testbed();
    let router = Router::new(&topo);
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let bad = topo.fabric_links()[3];
    let cfg = DesConfig {
        horizon_ns: 1_000_000_000,
        ..Default::default()
    };
    let faults = DesFaults {
        flaps: vec![Flap {
            link: bad,
            start_ns: 0,
            duration_ns: 800_000_000,
        }],
        ..Default::default()
    };
    let demands = generate_demands(
        &topo,
        &TrafficConfig::paper(800, TrafficPattern::Uniform),
        &mut rng,
    );
    let flows = simulate_des(&topo, &router, &cfg, &faults, &demands, &mut rng);

    // Per-packet analysis sees (almost) nothing: the flap buffers.
    let per_packet = flock::telemetry::input::assemble(
        &topo,
        &router,
        &flows,
        &[InputKind::Int],
        AnalysisMode::PerPacket,
    );
    let total_bad: u64 = per_packet
        .flows
        .iter()
        .map(|f| f.bad * f.weight as u64)
        .sum();

    // Per-flow RTT analysis localizes it (§7.5).
    let per_flow = flock::telemetry::input::assemble(
        &topo,
        &router,
        &flows,
        &[InputKind::Int],
        AnalysisMode::PerFlow {
            rtt_threshold_us: 10_000,
        },
    );
    let flagged: u64 = per_flow.flows.iter().map(|f| f.bad * f.weight as u64).sum();
    assert!(
        flagged > 0,
        "per-flow analysis must flag RTT spikes (per-packet saw {total_bad} bad)"
    );
    let result = FlockGreedy::default().localize(&topo, &per_flow);
    // RTT evidence is cable-level: a flow whose *forward* path crosses the
    // reverse direction of the flapped link spikes too (its ACKs are the
    // buffered packets), so blaming either direction localizes the flap.
    let truth = GroundTruth {
        failed_links: vec![bad, topo.link(bad).reverse],
        failed_devices: vec![],
    };
    let pr = evaluate(&topo, &result.predicted, &truth);
    assert!(
        pr.recall > 0.0,
        "flap must be localized from RTTs: blamed {:?}, truth {bad:?}",
        result.predicted
    );
}
