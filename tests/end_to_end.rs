//! Cross-crate integration: simulator → telemetry assembly → inference,
//! for every scheme, on shared traces.

use flock::prelude::*;
use flock::telemetry::plan_a1_probes;
use rand::SeedableRng;

struct Episode {
    topo: Topology,
    flows: Vec<MonitoredFlow>,
    truth: GroundTruth,
}

fn episode(n_failures: usize, flows_n: usize, seed: u64) -> Episode {
    let topo = flock::topology::clos::three_tier(ClosParams {
        pods: 3,
        tors_per_pod: 2,
        aggs_per_pod: 2,
        spines_per_plane: 2,
        hosts_per_tor: 4,
    });
    let router = Router::new(&topo);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let scenario =
        flock::netsim::failure::silent_link_drops(&topo, n_failures, (0.01, 0.02), 1e-4, &mut rng);
    let demands = flock::netsim::traffic::generate_demands(
        &topo,
        &TrafficConfig::paper(flows_n, TrafficPattern::Uniform),
        &mut rng,
    );
    let cfg = FlowSimConfig::default();
    let mut flows =
        flock::netsim::flowsim::simulate_flows(&topo, &router, &scenario, &demands, &cfg, &mut rng);
    // 1000 packets per probe path: enough resolution to separate the
    // 1-2% failure rates under test from the 0.01% noise floor.
    let probes = plan_a1_probes(&topo, &router, 1000, None);
    flows.extend(flock::netsim::flowsim::run_probes(
        &scenario, &probes, &cfg, &mut rng,
    ));
    Episode {
        truth: scenario.truth,
        topo,
        flows,
    }
}

fn assemble(ep: &Episode, kinds: &[InputKind]) -> ObservationSet {
    let router = Router::new(&ep.topo);
    flock::telemetry::input::assemble(&ep.topo, &router, &ep.flows, kinds, AnalysisMode::PerPacket)
}

#[test]
fn flock_int_localizes_exactly() {
    // Seed chosen so the two drawn failures sit on disjoint devices (the
    // Theorem 2 separable regime); when both failed links share a switch
    // the MLE correctly prefers the device hypothesis, which App. A.1
    // scores as a precision miss.
    let ep = episode(2, 6_000, 2);
    let obs = assemble(&ep, &[InputKind::Int]);
    let r = FlockGreedy::default().localize(&ep.topo, &obs);
    let pr = evaluate(&ep.topo, &r.predicted, &ep.truth);
    assert_eq!(
        pr.recall, 1.0,
        "blamed {:?}, truth {:?}",
        r.predicted, ep.truth
    );
    assert!(pr.precision >= 0.99);
}

#[test]
fn every_scheme_runs_on_its_input() {
    let ep = episode(1, 3_000, 2);
    let schemes: Vec<(Vec<InputKind>, Box<dyn Localizer>)> = vec![
        (vec![InputKind::Int], Box::new(FlockGreedy::default())),
        (
            vec![InputKind::A1, InputKind::P],
            Box::new(FlockGreedy::default()),
        ),
        (vec![InputKind::A1], Box::new(NetBouncer::new(1.0, 5e-3))),
        (vec![InputKind::A2], Box::new(ZeroZeroSeven::new(1.0))),
        (vec![InputKind::Int], Box::new(GibbsSampler::default())),
        (
            vec![InputKind::Int],
            Box::new(SherlockFerret::with_jle(HyperParams::default(), 1)),
        ),
    ];
    for (kinds, localizer) in schemes {
        let obs = assemble(&ep, &kinds);
        let r = localizer.localize(&ep.topo, &obs);
        let pr = evaluate(&ep.topo, &r.predicted, &ep.truth);
        // Sanity: on an easy single-failure episode no scheme should blame
        // a wildly wrong set (precision 0 with many predictions).
        assert!(
            pr.recall > 0.0 || r.predicted.len() <= 1,
            "{}: predicted {:?} truth {:?}",
            localizer.name(),
            r.predicted,
            ep.truth
        );
    }
}

#[test]
fn flock_beats_voting_under_skew() {
    // The §7.3 story: skewed traffic breaks 007's votes but not Flock.
    let topo = flock::topology::clos::three_tier(ClosParams {
        pods: 4,
        tors_per_pod: 4,
        aggs_per_pod: 2,
        spines_per_plane: 4,
        hosts_per_tor: 6,
    });
    let router = Router::new(&topo);
    let mut flock_f = 0.0;
    let mut seven_f = 0.0;
    let trials = 6;
    for seed in 0..trials {
        let mut rng = rand::rngs::StdRng::seed_from_u64(100 + seed);
        let scenario =
            flock::netsim::failure::silent_link_drops(&topo, 2, (0.008, 0.012), 1e-4, &mut rng);
        let demands = flock::netsim::traffic::generate_demands(
            &topo,
            &TrafficConfig::paper(15_000, TrafficPattern::paper_skewed()),
            &mut rng,
        );
        let flows = flock::netsim::flowsim::simulate_flows(
            &topo,
            &router,
            &scenario,
            &demands,
            &FlowSimConfig::default(),
            &mut rng,
        );
        let obs = flock::telemetry::input::assemble(
            &topo,
            &router,
            &flows,
            &[InputKind::A2],
            AnalysisMode::PerPacket,
        );
        // Parameters from the §5.2 calibration procedure (the fig2a
        // harness selects these for the A2 input kind).
        let params = HyperParams {
            p_g: 5e-4,
            p_b: 6e-3,
            rho_link: (-15.0f64).exp(),
            ..Default::default()
        };
        let rf = FlockGreedy::new(params).localize(&topo, &obs);
        let prf = evaluate(&topo, &rf.predicted, &scenario.truth);
        flock_f += fscore(prf.precision, prf.recall);
        let rs = ZeroZeroSeven::new(2.0).localize(&topo, &obs);
        let prs = evaluate(&topo, &rs.predicted, &scenario.truth);
        seven_f += fscore(prs.precision, prs.recall);
    }
    assert!(
        flock_f > seven_f,
        "Flock {:.3} should beat 007 {:.3} on the same A2 input under skew",
        flock_f / trials as f64,
        seven_f / trials as f64
    );
}

#[test]
fn passive_only_narrows_to_equivalence_class() {
    let ep = episode(1, 8_000, 4);
    let obs = assemble(&ep, &[InputKind::P]);
    let r = FlockGreedy::default().localize(&ep.topo, &obs);
    // The truly failed link must be inside the blamed set OR share an
    // equivalence class with it; at minimum recall through class members
    // means *something* was blamed.
    assert!(
        !r.predicted.is_empty(),
        "passive input carried enough signal to blame at least a class"
    );
}

#[test]
fn zero_failures_zero_blame() {
    let topo = flock::topology::clos::three_tier(ClosParams::tiny());
    let router = Router::new(&topo);
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let scenario = FailureScenario::noise_only(&topo, 1e-4, &mut rng);
    let demands = flock::netsim::traffic::generate_demands(
        &topo,
        &TrafficConfig::paper(4_000, TrafficPattern::Uniform),
        &mut rng,
    );
    let flows = flock::netsim::flowsim::simulate_flows(
        &topo,
        &router,
        &scenario,
        &demands,
        &FlowSimConfig::default(),
        &mut rng,
    );
    let obs = flock::telemetry::input::assemble(
        &topo,
        &router,
        &flows,
        &[InputKind::Int],
        AnalysisMode::PerPacket,
    );
    let r = FlockGreedy::default().localize(&topo, &obs);
    assert!(
        r.predicted.is_empty(),
        "noise-only trace must produce the empty hypothesis, got {:?}",
        r.predicted
    );
}
