//! Integration: the full live pipeline — simulator feeding per-host
//! agents, real TCP export to the collector, reconstruction, inference.

use flock::prelude::*;
use flock::telemetry::agent::{AgentConfig, AgentCore, Exporter, FlowSample};
use rand::SeedableRng;
use std::collections::HashMap;

#[test]
fn tcp_pipeline_localizes_failure() {
    let topo = flock::topology::clos::three_tier(ClosParams {
        pods: 3,
        tors_per_pod: 2,
        aggs_per_pod: 2,
        spines_per_plane: 2,
        hosts_per_tor: 3,
    });
    let router = Router::new(&topo);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let scenario = flock::netsim::failure::silent_link_drops(&topo, 1, (0.03, 0.03), 0.0, &mut rng);
    let demands = flock::netsim::traffic::generate_demands(
        &topo,
        &TrafficConfig::paper(3_000, TrafficPattern::Uniform),
        &mut rng,
    );
    let flows = flock::netsim::flowsim::simulate_flows(
        &topo,
        &router,
        &scenario,
        &demands,
        &FlowSimConfig::default(),
        &mut rng,
    );

    let collector = Collector::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let mut per_host: HashMap<NodeId, Vec<&MonitoredFlow>> = HashMap::new();
    for f in &flows {
        per_host.entry(f.key.src).or_default().push(f);
    }
    let n_flows = flows.len();
    for (host, host_flows) in &per_host {
        let mut agent = AgentCore::new(AgentConfig {
            agent_id: host.0,
            ..Default::default()
        });
        for f in host_flows {
            agent.observe(FlowSample {
                key: f.key,
                packets: f.stats.packets,
                retransmissions: f.stats.retransmissions,
                bytes: f.stats.bytes,
                rtt_us: Some(f.stats.rtt_max_us),
                // A2-style: flagged flows are path-traced.
                path: (f.stats.retransmissions > 0).then(|| f.true_path.clone()),
                class: flock::telemetry::TrafficClass::Passive,
            });
        }
        let records = agent.export();
        let msgs = agent.encode_export(0, &records);
        let mut exporter = Exporter::connect(collector.local_addr()).unwrap();
        for m in &msgs {
            exporter.send(m).unwrap();
        }
        exporter.finish().unwrap();
    }

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while collector.pending() < n_flows && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let records = collector.drain();
    assert_eq!(records.len(), n_flows, "all records must arrive");
    assert_eq!(
        collector.stats().snapshot().decode_errors,
        0,
        "no decode errors"
    );

    let monitored: Vec<MonitoredFlow> = records
        .into_iter()
        .map(|r| MonitoredFlow {
            key: r.key,
            stats: r.stats,
            class: r.class,
            true_path: r.path.unwrap_or_default(),
        })
        .collect();
    let obs = flock::telemetry::input::assemble(
        &topo,
        &router,
        &monitored,
        &[InputKind::A2, InputKind::P],
        AnalysisMode::PerPacket,
    );
    let result = FlockGreedy::default().localize(&topo, &obs);
    let pr = evaluate(&topo, &result.predicted, &scenario.truth);
    assert_eq!(
        pr.recall, 1.0,
        "pipeline must localize the failed link: blamed {:?}, truth {:?}",
        result.predicted, scenario.truth
    );
}
