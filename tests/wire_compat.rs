//! Integration: wire-version negotiation end to end. A v1 agent (no
//! epoch hints) exporting to the v2 reactor collector must yield exactly
//! the same epoch reports as a v2 agent exporting the same flows — the
//! pre-bucketed fast path is an optimization, never a behavior change.

use flock::prelude::*;
use flock::telemetry::agent::{AgentConfig, AgentCore, Exporter, FlowSample};
use rand::SeedableRng;
use std::collections::HashMap;

const EPOCH_MS: u64 = 1_000;
const EPOCHS: u64 = 3;

fn run_pipeline(
    topo: &Topology,
    flows_per_epoch: &[Vec<MonitoredFlow>],
    epoch_hint_ms: Option<u64>,
) -> Vec<EpochReport> {
    let collector = Collector::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let mut pipeline = StreamPipeline::new(
        topo,
        StreamConfig {
            epoch: EpochConfig::tumbling(EPOCH_MS),
            kinds: vec![InputKind::A2, InputKind::P],
            warm_start: true,
            shard_by_pod: false,
            ..StreamConfig::paper_default()
        },
    );

    let mut reports = Vec::new();
    for (epoch, flows) in flows_per_epoch.iter().enumerate() {
        let epoch = epoch as u64;
        let mut per_host: HashMap<NodeId, Vec<&MonitoredFlow>> = HashMap::new();
        for f in flows {
            per_host.entry(f.key.src).or_default().push(f);
        }
        for (host, host_flows) in &per_host {
            let mut agent = AgentCore::new(AgentConfig {
                agent_id: host.0,
                epoch_hint_ms,
                ..Default::default()
            });
            for f in host_flows {
                agent.observe(FlowSample {
                    key: f.key,
                    packets: f.stats.packets,
                    retransmissions: f.stats.retransmissions,
                    bytes: f.stats.bytes,
                    rtt_us: Some(f.stats.rtt_max_us),
                    path: (f.stats.retransmissions > 0).then(|| f.true_path.clone()),
                    class: flock::telemetry::TrafficClass::Passive,
                });
            }
            let records = agent.export();
            let msgs = agent.encode_export(epoch * EPOCH_MS + EPOCH_MS / 2, &records);
            let mut exporter = Exporter::connect(collector.local_addr()).unwrap();
            for m in &msgs {
                exporter.send(m).unwrap();
            }
            exporter.finish().unwrap();
        }

        let expected = flows.len();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while collector.pending() < expected && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(collector.pending(), expected, "records lost in transit");

        let batch = collector.drain_buckets();
        if epoch_hint_ms.is_some() {
            assert!(batch.unhinted.is_empty(), "v2 agents pre-bucket everything");
            assert_eq!(batch.buckets.len(), 1, "one epoch per drain");
            assert_eq!(batch.buckets[0].0, epoch);
        } else {
            assert!(batch.buckets.is_empty(), "v1 agents carry no hints");
            assert_eq!(batch.unhinted.len(), expected);
        }
        pipeline.ingest_bucketed(batch);
        reports.extend(pipeline.poll((epoch + 1) * EPOCH_MS));
    }
    reports.extend(pipeline.drain());
    assert_eq!(pipeline.late_records(), 0);
    collector.shutdown();
    reports
}

#[test]
fn v1_agents_against_v2_collector_match_v2_reports() {
    let topo = flock::topology::clos::three_tier(ClosParams {
        pods: 3,
        tors_per_pod: 2,
        aggs_per_pod: 2,
        spines_per_plane: 2,
        hosts_per_tor: 3,
    });
    let router = Router::new(&topo);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let scenario = flock::netsim::failure::silent_link_drops(&topo, 1, (0.03, 0.03), 0.0, &mut rng);

    // The same flow stream for both runs.
    let flows_per_epoch: Vec<Vec<MonitoredFlow>> = (0..EPOCHS)
        .map(|_| {
            let demands = flock::netsim::traffic::generate_demands(
                &topo,
                &TrafficConfig::paper(3_000, TrafficPattern::Uniform),
                &mut rng,
            );
            flock::netsim::flowsim::simulate_flows(
                &topo,
                &router,
                &scenario,
                &demands,
                &FlowSimConfig::default(),
                &mut rng,
            )
        })
        .collect();

    let v1_reports = run_pipeline(&topo, &flows_per_epoch, None);
    let v2_reports = run_pipeline(&topo, &flows_per_epoch, Some(EPOCH_MS));

    assert_eq!(v1_reports.len(), EPOCHS as usize);
    assert_eq!(v2_reports.len(), EPOCHS as usize);
    for (v1, v2) in v1_reports.iter().zip(&v2_reports) {
        assert_eq!(v1.epoch_index, v2.epoch_index);
        assert_eq!(v1.records, v2.records, "same records per epoch");
        assert_eq!(v1.observations, v2.observations, "same assembled obs");
        // Arrival order over concurrent sockets is nondeterministic, so
        // compare verdicts as sets, not score-ordered lists.
        let sorted = |r: &EpochReport| {
            let mut p = r.result.predicted.clone();
            p.sort();
            p
        };
        assert_eq!(
            sorted(v1),
            sorted(v2),
            "epoch {}: identical verdicts down both wire paths",
            v1.epoch_index
        );
        // Both paths localize the injected fault.
        let pr = evaluate(&topo, &v1.result.predicted, &scenario.truth);
        assert_eq!(
            (pr.precision, pr.recall),
            (1.0, 1.0),
            "epoch {}: fault must be localized exactly (blamed {:?}, truth {:?})",
            v1.epoch_index,
            v1.result.predicted,
            scenario.truth
        );
    }
}
