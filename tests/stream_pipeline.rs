//! Integration: the full online loop — agents exporting over real TCP
//! sockets, the collector's stamped store, epoch windowing, and
//! warm-started localization — across a dynamic failure that appears and
//! heals mid-run.

use flock::prelude::*;
use flock::telemetry::agent::{AgentConfig, AgentCore, Exporter, FlowSample};
use rand::SeedableRng;
use std::collections::HashMap;

const EPOCH_MS: u64 = 1_000;

#[test]
fn collector_to_stream_detects_fault_and_heal() {
    let topo = flock::topology::clos::three_tier(ClosParams {
        pods: 3,
        tors_per_pod: 2,
        aggs_per_pod: 2,
        spines_per_plane: 2,
        hosts_per_tor: 3,
    });
    let router = Router::new(&topo);
    let mut rng = rand::rngs::StdRng::seed_from_u64(55);

    // Fault active over epochs [1, 3): one appearance, one heal.
    let mut scenario = DynamicScenario::noise_only(&topo, 1e-4, &mut rng);
    let faulty = topo.fabric_links()[5];
    scenario.events.push(FaultEvent {
        link: faulty,
        drop_rate: 0.02,
        appear_epoch: 1,
        heal_epoch: Some(3),
    });

    let collector = Collector::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let mut pipeline = StreamPipeline::new(
        &topo,
        StreamConfig {
            epoch: EpochConfig::tumbling(EPOCH_MS),
            kinds: vec![InputKind::A2, InputKind::P],
            mode: AnalysisMode::PerPacket,
            warm_start: true,
            shard_by_pod: false,
            ..StreamConfig::paper_default()
        },
    );

    let mut reports: Vec<EpochReport> = Vec::new();
    for epoch in 0..4u64 {
        let snapshot = scenario.scenario_at(epoch);
        let demands = flock::netsim::traffic::generate_demands(
            &topo,
            &TrafficConfig::paper(3_000, TrafficPattern::Uniform),
            &mut rng,
        );
        let flows = flock::netsim::flowsim::simulate_flows(
            &topo,
            &router,
            &snapshot,
            &demands,
            &FlowSimConfig::default(),
            &mut rng,
        );

        let mut per_host: HashMap<NodeId, Vec<&MonitoredFlow>> = HashMap::new();
        for f in &flows {
            per_host.entry(f.key.src).or_default().push(f);
        }
        for (host, host_flows) in &per_host {
            let mut agent = AgentCore::new(AgentConfig {
                agent_id: host.0,
                ..Default::default()
            });
            for f in host_flows {
                agent.observe(FlowSample {
                    key: f.key,
                    packets: f.stats.packets,
                    retransmissions: f.stats.retransmissions,
                    bytes: f.stats.bytes,
                    rtt_us: Some(f.stats.rtt_max_us),
                    path: (f.stats.retransmissions > 0).then(|| f.true_path.clone()),
                    class: flock::telemetry::TrafficClass::Passive,
                });
            }
            let records = agent.export();
            let msgs = agent.encode_export(epoch * EPOCH_MS + EPOCH_MS / 2, &records);
            let mut exporter = Exporter::connect(collector.local_addr()).unwrap();
            for m in &msgs {
                exporter.send(m).unwrap();
            }
            exporter.finish().unwrap();
        }

        let expected = flows.len();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while collector.pending() < expected && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(collector.pending(), expected, "records lost in transit");
        pipeline.ingest(collector.drain_stamped());
        reports.extend(pipeline.poll((epoch + 1) * EPOCH_MS));
    }
    reports.extend(pipeline.drain());
    assert_eq!(pipeline.late_records(), 0);
    assert_eq!(reports.len(), 4, "one report per epoch");

    for report in &reports {
        let active = scenario.active_at(report.epoch_index);
        let blamed = report.result.predicted_links();
        if active.is_empty() {
            assert!(
                blamed.is_empty(),
                "epoch {}: healed/clean network must clear the verdict, blamed {:?}",
                report.epoch_index,
                report.result.predicted
            );
        } else {
            assert_eq!(
                blamed, active,
                "epoch {}: active fault must be blamed exactly",
                report.epoch_index
            );
        }
    }
    // The heal is detected: the faulty link vanishes from later verdicts.
    assert!(reports[1].result.predicted_links().contains(&faulty));
    assert!(reports[2].result.predicted_links().contains(&faulty));
    assert!(!reports[3].result.predicted_links().contains(&faulty));
    collector.shutdown();
}
