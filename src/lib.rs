//! # Flock — network fault localization at scale, in Rust
//!
//! A from-scratch reproduction of *"Flock: Accurate Network Fault
//! Localization at Scale"* (Harsh, Meng, Agrawal, Godfrey — CoNEXT 2023),
//! covering the Flock inference algorithm (a discrete Bayesian PGM solved
//! by greedy maximum-likelihood search with Joint Likelihood Exploration),
//! every substrate its evaluation depends on, and the baselines it is
//! compared against.
//!
//! This facade crate re-exports the workspace members under short module
//! names and hosts the runnable examples and cross-crate integration
//! tests.
//!
//! ## Quick start
//!
//! ```
//! use flock::prelude::*;
//! use rand::SeedableRng;
//!
//! // 1. A small three-tier Clos fabric.
//! let topo = flock::topology::clos::three_tier(ClosParams::tiny());
//! let router = Router::new(&topo);
//!
//! // 2. Inject a silent gray failure and simulate telemetry.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let scenario = flock::netsim::failure::silent_link_drops(
//!     &topo, 1, (0.02, 0.02), 0.0, &mut rng);
//! let demands = flock::netsim::traffic::generate_demands(
//!     &topo,
//!     &TrafficConfig::paper(2_000, TrafficPattern::Uniform),
//!     &mut rng);
//! let flows = flock::netsim::flowsim::simulate_flows(
//!     &topo, &router, &scenario, &demands, &FlowSimConfig::default(), &mut rng);
//!
//! // 3. Assemble INT-style input and run Flock.
//! let obs = flock::telemetry::input::assemble(
//!     &topo, &router, &flows, &[InputKind::Int], AnalysisMode::PerPacket);
//! let result = FlockGreedy::default().localize(&topo, &obs);
//! assert_eq!(result.predicted_links(), scenario.truth.failed_links);
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`topology`] | `flock-topology` | Clos fabrics, ECMP routing, equivalence classes |
//! | [`telemetry`] | `flock-telemetry` | flow records, wire codec, agent/collector, input assembly |
//! | [`netsim`] | `flock-netsim` | flow-level and packet-level simulators, failure injection |
//! | [`core`] | `flock-core` | the PGM, the JLE engine, greedy/Sherlock/Gibbs inference, metrics |
//! | [`baselines`] | `flock-baselines` | 007 and NetBouncer |
//! | [`calibrate`] | `flock-calibrate` | automated hyperparameter calibration |
//! | [`stream`] | `flock-stream` | online epoch pipeline with warm-start inference |
//! | [`store`] | `flock-store` | tiered verdict store: blame history, alerts, provenance, metrics |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use flock_baselines as baselines;
pub use flock_calibrate as calibrate;
pub use flock_core as core;
pub use flock_netsim as netsim;
pub use flock_store as store;
pub use flock_stream as stream;
pub use flock_telemetry as telemetry;
pub use flock_topology as topology;

/// The most commonly used types, for `use flock::prelude::*`.
pub mod prelude {
    pub use flock_baselines::{NetBouncer, ZeroZeroSeven};
    pub use flock_core::{
        evaluate, fscore, FlockGreedy, GibbsSampler, HyperParams, KernelDispatch,
        LocalizationResult, Localizer, PrecisionRecall, SherlockFerret,
    };
    pub use flock_netsim::{
        DesConfig, DesFaults, DynamicScenario, FailureScenario, FaultEvent, FlowSimConfig,
        TrafficConfig, TrafficPattern,
    };
    pub use flock_store::{
        Alert, AlertPolicy, Durability, MetricsRegistry, OpsAlert, StoreConfig, StoreQuery,
        VerdictStore,
    };
    pub use flock_stream::{
        DegradeReason, EpochConfig, EpochHealth, EpochReport, Provenance, StreamConfig,
        StreamPipeline,
    };
    pub use flock_telemetry::{
        AnalysisMode, CoalesceMode, Collector, CollectorConfig, DrainBatch, FlowKey, FlowRecord,
        InputKind, MonitoredFlow, ObservationSet, StampedRecord, StatsSnapshot,
    };
    pub use flock_topology::{
        ClosParams, Component, GroundTruth, LeafSpineParams, LinkId, NodeId, Router, Topology,
    };
}
